// SkyBridge: kernel-less synchronous IPC via VMFUNC EPTP switching.
//
// Public programming model (paper Figure 4):
//
//   // server process
//   ServerId sid = sky.RegisterServer(server, /*connections=*/8, handler);
//   // client process
//   sky.RegisterClient(client, sid);
//   Message reply = sky.DirectServerCall(client_thread, sid, request);
//
// Registration is a (slow, kernel-mediated) syscall path: the Subkernel scans
// and rewrites the process's code pages (Section 5), maps the trampoline,
// server stacks and shared buffers, and asks the Rootkernel for a binding
// EPT whose CR3-GPA remap points the client's CR3 at the server's page
// tables. The call itself never enters the kernel: the trampoline saves
// registers, executes VMFUNC, installs a server stack, checks the calling
// key and jumps to the registered handler — 2 x (134 + 64) = 396 cycles of
// direct cost per roundtrip.
//
// The call path is O(1) in the number of registered bindings: lookups go
// through a per-thread last-route cache backed by an open-addressed hash
// index keyed on (client, server); LRU maintenance uses intrusive prev/next
// links embedded in the Binding; and each installed binding caches its EPTP
// list slot, invalidated centrally whenever InstallBinding reshuffles the
// list. Registration — the sanctioned slow path — fans its code-page scans
// out over a thread pool instead.

#ifndef SRC_SKYBRIDGE_SKYBRIDGE_H_
#define SRC_SKYBRIDGE_SKYBRIDGE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/base/thread_pool.h"
#include "src/mk/kernel.h"
#include "src/skybridge/trampoline.h"

namespace skybridge {

using ServerId = uint64_t;

// ---- Fault-point catalog (src/base/faultpoint.h, DESIGN.md section 10) ----
// Each point has a tested recovery path; arming one must never turn into an
// SB_CHECK death.
//
// The caller's cached EPTP slot is evicted between route lookup and VMFUNC
// (a concurrent registration LRU-evicted the binding). Recovery: detect the
// stale slot, re-arm via the slowpath with bounded backoff; the call retries
// transparently or fails Unavailable after max_stale_slot_retries.
inline constexpr const char kFaultPreVmfunc[] = "skybridge.call.pre_vmfunc";
// The server thread crashes mid-handler, stranding the client in the
// server's address space. Recovery: Rootkernel-mediated abort (kAbortToView)
// restores the client's EPT view, the trampoline frame is popped, the kernel
// unblocks the caller and the call returns Status::Aborted.
inline constexpr const char kFaultHandlerCrash[] = "skybridge.handler.crash";
// The server scribbles the reply descriptor so the reply escapes the
// caller's shared-buffer slice. Recovery: the return gate rejects the reply
// — after the EPT view is restored — with a gate_rejections metric.
inline constexpr const char kFaultReplyCorrupt[] = "skybridge.gate.reply_corrupt";
// The caller's binding is revoked while its call is in flight. Recovery:
// the in-flight call drains normally; EPTP-list surgery is deferred to the
// drain and new calls are refused with PermissionDenied.
inline constexpr const char kFaultRevokeInflight[] = "skybridge.call.revoke_inflight";

struct SkyBridgeConfig {
  // Maximum EPTP list slots a client may occupy (hardware limit 512). The
  // library LRU-evicts bindings beyond this (paper Section 10 future work).
  size_t eptp_capacity = hw::kEptpListCapacity;
  // Per-(binding, connection) shared buffer for long messages.
  uint64_t shared_buffer_bytes = 64 * 1024;
  // Connection slices carved out of each binding's buffer region (paper
  // Section 6.3 per-thread buffers): thread t uses slice t % buffer_slices,
  // each slice holding shared_buffer_bytes, so concurrent connections of one
  // binding stop aliasing a single buffer.
  uint64_t buffer_slices = 4;
  // Ablation switch: model the legacy two-copy long path (client WriteVirt
  // in, server WriteVirt reply, client ReadVirt out into the returned
  // message). Off by default — the handler gets a borrowed view over the
  // slice and the client consumes the reply straight from the buffer, which
  // is the paper's one-copy claim; pair with the in-place API for zero-copy.
  bool legacy_two_copy = false;
  // Enforce calling-key checks (ablation switch).
  bool calling_keys = true;
  // Rewrite process binaries at registration (ablation switch; disabling is
  // insecure and exists only to measure the cost).
  bool rewrite_binaries = true;
  // DoS defence: force return to the client if a handler runs longer.
  uint64_t timeout_cycles = 1ULL << 32;
  uint64_t key_seed = 0x5eedULL;
  // Worker threads for the registration-scan pool. A fixed count — never
  // derived from std::thread::hardware_concurrency — so scan fan-out (and
  // the scan_threads gauge tests assert on) matches between a 2-vCPU CI
  // runner and a large workstation.
  int scan_pool_threads = 4;
  // Bounded backoff for re-arming a binding whose cached EPTP slot went
  // stale between lookup and VMFUNC (concurrent eviction). After this many
  // slowpath re-installs the call fails Unavailable.
  uint64_t max_stale_slot_retries = 3;
};

// Point-in-time snapshot of the library's counters. The live values are
// telemetry registry metrics (skybridge.* on the machine's registry); this
// struct is folded from them by stats() to keep the historical accessor.
struct SkyBridgeStats {
  uint64_t direct_calls = 0;
  uint64_t long_calls = 0;       // Used the shared buffer.
  uint64_t inplace_calls = 0;    // Request built in place (no request copy).
  uint64_t inplace_replies = 0;  // Reply built in place (no reply copy).
  uint64_t rejected_calls = 0;   // Calling-key, binding or capacity failures.
  uint64_t timeouts = 0;
  uint64_t eptp_misses = 0;      // Binding had been LRU-evicted; reinstalled.
  uint64_t rewritten_vmfuncs = 0;
  uint64_t processes_rewritten = 0;
  // Fast-path lookup accounting: hits were served by the per-thread
  // last-route cache; misses fell through to the binding hash index.
  uint64_t binding_lookup_hits = 0;
  uint64_t binding_lookup_misses = 0;
  // Registration-scan accounting (the parallel slow path).
  uint64_t scan_pages = 0;    // Code-page chunks scanned across rewrites.
  uint64_t scan_threads = 0;  // Widest fan-out any scan used.
  // ---- Fault model & recovery (DESIGN.md section 10) ----
  uint64_t aborted_calls = 0;      // Server crashed mid-handler; rootkernel abort.
  uint64_t gate_rejections = 0;    // Replies rejected at the return gate.
  uint64_t stale_slot_retries = 0; // Pre-VMFUNC stale-slot slowpath re-arms.
  uint64_t revoked_rejections = 0; // Calls refused on a revoked binding.
  uint64_t bindings_revoked = 0;   // RevokeBinding transitions.
};

class SkyBridge {
 public:
  // Requires a kernel booted with the Rootkernel.
  explicit SkyBridge(mk::Kernel& kernel, SkyBridgeConfig config = {});

  // ---- Registration (paper Figure 4) ----
  sb::StatusOr<ServerId> RegisterServer(mk::Process* server, int max_connections,
                                        mk::Handler handler);
  sb::Status RegisterClient(mk::Process* client, ServerId server_id);

  // ---- Dynamic code (paper Section 9, W^X) ----
  // Replaces a registered process's code image, as a JIT or live-update
  // would: the pages are treated as writable+non-executable during the
  // update, then this call remaps them executable and *rescans/rewrites*
  // them so no new VMFUNC gate can appear.
  sb::Status UpdateProcessCode(mk::Process* process, std::vector<uint8_t> new_image);

  // ---- The IPC itself ----
  // Executes the requested procedure in the server's address space on the
  // caller's core without entering the kernel.
  sb::StatusOr<mk::Message> DirectServerCall(mk::Thread* caller, ServerId server_id,
                                             const mk::Message& msg,
                                             mk::CostBreakdown* bd = nullptr);

  // ---- In-place long-message API (zero-copy path) ----
  // Returns a host-writable view of the caller's per-connection slice of the
  // binding's shared buffer. The client builds its payload directly in the
  // span — no staging vector — then issues DirectServerCallInPlace with the
  // number of bytes written. The span stays valid until the next call or
  // acquire on the same connection reuses the slice; there is no explicit
  // release.
  sb::StatusOr<std::span<uint8_t>> AcquireSendBuffer(mk::Thread* caller, ServerId server_id);

  // Calls `server_id` with the `len` payload bytes previously written into
  // the acquired slice. No request copy is charged (the bytes are already in
  // the shared buffer); the handler receives a borrowed view, may build its
  // reply in env.reply_buffer (same slice) and return Message::Borrowed —
  // then no reply copy is charged either and the roundtrip moves zero bytes.
  sb::StatusOr<mk::Message> DirectServerCallInPlace(mk::Thread* caller, ServerId server_id,
                                                    uint64_t tag, uint64_t len,
                                                    mk::CostBreakdown* bd = nullptr);

  // Simulates a malicious caller that skips registration / forges a key;
  // returns the error the legitimate path produces (for the security tests).
  sb::StatusOr<mk::Message> CallWithForgedKey(mk::Thread* caller, ServerId server_id,
                                              const mk::Message& msg, uint64_t forged_key);

  // Folds the registry-backed counters into the snapshot struct. The
  // returned reference stays valid until the next stats() call.
  const SkyBridgeStats& stats() const;
  const SkyBridgeConfig& config() const { return config_; }
  mk::Kernel& kernel() { return *kernel_; }

  // ---- Revocation (fault model, DESIGN.md section 10) ----
  // Revokes the (client, server) binding: new calls and buffer acquisitions
  // are refused with PermissionDenied, every thread's cached route drops,
  // and the binding's EPTP-list entry is removed — immediately if the client
  // has no calls in flight, otherwise deferred until the client drains (the
  // EPTP list is never reshaped under a live call). Re-registering the pair
  // later revives the binding with a fresh calling key.
  sb::Status RevokeBinding(mk::Process* client, ServerId server_id);

  // Structural invariants the stress runner asserts between events: LRU
  // list consistency, cached-slot/EPTP-list agreement, per-client capacity,
  // revoked bindings uninstalled once drained, in-flight accounting.
  // Returns the first violated invariant.
  sb::Status CheckInvariants() const;

  // Calls currently between entry and return across all bindings. Zero at
  // quiesce; a nonzero value with no call on the stack is a leaked slice.
  uint64_t InFlightCalls() const;

  // Number of EPTP slots currently installed for a client (tests).
  sb::StatusOr<size_t> InstalledBindings(mk::Process* client) const;

 private:
  struct ServerEntry {
    ServerId id;
    mk::Process* process;
    mk::Handler handler;
    int max_connections;
    hw::Gva handler_va;  // "function address" in the server's function list.
    uint64_t next_connection = 0;
  };

  // Sentinel for "binding not on the client's EPTP list".
  static constexpr uint32_t kNoEptpSlot = 0xffffffffu;
  static constexpr size_t kSlotNotFound = static_cast<size_t>(-1);

  struct ClientState;

  struct Binding {
    mk::Process* client;      // The process whose CR3 is live when used.
    ServerId server;
    uint64_t ept_id;          // Rootkernel EPT id.
    uint64_t server_key;      // Client -> server calling key.
    hw::Gva shared_buf;       // Region base, mapped at the same VA in both.
    uint64_t key_slot;        // Index in the server's calling-key table.
    // ---- Buffer carving (long-message path) ----
    // The region is num_slices page-aligned slices of slice_stride bytes;
    // connection (thread) t owns slice t % num_slices, each with
    // shared_buffer_bytes of capacity. host_base is the host-contiguous view
    // of the whole region (nullptr for chain bindings, which carry no
    // buffer), enabling borrowed message views without simulated copies.
    uint64_t slice_stride = 0;
    uint32_t num_slices = 0;
    uint8_t* host_base = nullptr;
    bool installed = true;    // Currently on the client's EPTP list.
    // Revoked bindings refuse new calls; their EPTP entry is removed when
    // the client drains. The record itself persists ("bindings are never
    // destroyed") and re-registration revives it.
    bool revoked = false;
    // Calls currently between entry and return on this binding. The EPTP
    // list is never reshaped while the owning client has calls in flight.
    uint64_t in_flight = 0;
    // Chain bindings support nested calls (A -> B -> C): the EPT maps A's
    // CR3 to C's page tables, while authorization/keys come from the B -> C
    // registration (Section 4.2: "the Rootkernel also writes all processes'
    // EPTPs that the server depends on into the client's EPTP list").
    bool chain = false;
    // ---- Fast-path state ----
    // Cached index of `ept_id` on the client's EPTP list; kNoEptpSlot while
    // evicted. Maintained centrally by InstallBinding/RefreshEptpSlots so
    // DirectServerCall never scans the list.
    uint32_t eptp_slot = kNoEptpSlot;
    // Intrusive per-client LRU links (head = most recently used).
    Binding* lru_prev = nullptr;
    Binding* lru_next = nullptr;
    ClientState* lru_owner = nullptr;
  };

  // Per-client fast-path state: the intrusive LRU list heads.
  struct ClientState {
    Binding* lru_head = nullptr;  // Most recently used.
    Binding* lru_tail = nullptr;  // Eviction candidate end.
    uint64_t inflight = 0;        // Sum of in_flight over this client's bindings.
    bool pending_revocations = false;  // Sweep deferred until inflight drains.
  };

  // Open-addressed hash index over (client, server) -> Binding*: linear
  // probing, power-of-two capacity. Bindings are never destroyed, so there
  // are no tombstones and lookups stop at the first empty slot.
  class BindingIndex {
   public:
    BindingIndex() : slots_(kInitialSlots, nullptr) {}
    Binding* Find(const mk::Process* client, ServerId server) const;
    void Insert(Binding* binding);

   private:
    static constexpr size_t kInitialSlots = 64;
    static size_t Hash(const mk::Process* client, ServerId server);
    void Grow();
    std::vector<Binding*> slots_;
    size_t size_ = 0;
  };

  // The caller's per-connection slice of a binding's buffer region: its
  // guest VA (same in client and server) and, when the region has contiguous
  // host backing, the host view used for borrowed messages. Both empty/0 for
  // bufferless (chain) bindings.
  struct SliceRef {
    hw::Gva va = 0;
    std::span<uint8_t> host;
  };

  sb::Status EnsureProcessPrepared(mk::Process* process);
  sb::Status RewriteProcessImage(mk::Process* process);
  SliceRef SliceOf(const Binding& binding, const mk::Thread* caller) const;
  // Shared body of DirectServerCall / DirectServerCallInPlace. When
  // `in_place` is set, `msg_in` is ignored and the request is a borrowed
  // view of `inplace_len` bytes the client already wrote into its slice —
  // the request copy is skipped.
  sb::StatusOr<mk::Message> CallCommon(mk::Thread* caller, ServerId server_id,
                                       const mk::Message* msg_in, uint64_t inplace_tag,
                                       uint64_t inplace_len, bool in_place,
                                       mk::CostBreakdown* bd);
  // O(1) index lookup (slow path of the lookup; no linear scans).
  Binding* FindBinding(mk::Process* client, ServerId server);
  // Per-thread last-route cache in front of FindBinding; maintains the
  // binding_lookup_hits/misses counters.
  Binding* LookupRoute(mk::Thread* caller, ServerId server);
  // Registers a freshly created binding: index insert + LRU front.
  Binding* AdoptBinding(std::unique_ptr<Binding> binding);
  // Lazily creates the chain binding (origin's CR3 -> target server) used by
  // nested calls; kernel- and Rootkernel-mediated.
  sb::StatusOr<Binding*> GetOrCreateChainBinding(hw::Core& core, mk::Process* origin,
                                                 ServerId server_id);
  // Index of `ept_id` on an EPTP list, or kSlotNotFound. Only used on the
  // slow path (entry-slot restore after a reinstall reshuffles the list).
  static size_t EptpSlotOfId(const std::vector<uint64_t>& ids, uint64_t ept_id);
  // Recomputes every cached eptp_slot for `client` after the EPTP list
  // changed shape — the central invalidation point for the slot caches.
  void RefreshEptpSlots(mk::Process* client);
  // LRU maintenance: make room for / reinstall a binding. `pinned_ept` is
  // never evicted (the EPT we must return to).
  sb::Status InstallBinding(hw::Core& core, Binding& binding, uint64_t pinned_ept);
  // O(1) move-to-front on the client's intrusive LRU list.
  void TouchLru(Binding& binding);
  // Call drain accounting: decrements the in-flight counts taken at call
  // entry and runs any revocation sweep the drain unblocked.
  void FinishCall(Binding& binding);
  // Uninstalls every drained revoked binding of `client` (EPTP-list erase +
  // central slot refresh + reinstall on live cores); defers itself while the
  // client still has calls in flight.
  void SweepRevoked(mk::Process* client);
  // Fault-injection helper: evicts `binding` exactly as a concurrent
  // InstallBinding LRU pass would, leaving the caller's cached slot stale.
  void FaultEvict(hw::Core& core, Binding& binding);

  // The trampoline leg costs: 64 cycles of save/restore + stack install per
  // direction (Section 6.3) plus the i-side traffic of the trampoline page.
  void ChargeTrampolineLeg(hw::Core& core, mk::CostBreakdown* bd);

  // Live counters on the machine's telemetry registry (skybridge.*). Handles
  // are registered once in the constructor; the hot path only does relaxed
  // sharded adds. `metrics_.scan_threads` is a high-water gauge.
  struct Metrics {
    sb::telemetry::Counter* direct_calls;
    sb::telemetry::Counter* long_calls;
    sb::telemetry::Counter* inplace_calls;
    sb::telemetry::Counter* inplace_replies;
    sb::telemetry::Counter* rejected_calls;
    sb::telemetry::Counter* timeouts;
    sb::telemetry::Counter* eptp_misses;
    sb::telemetry::Counter* rewritten_vmfuncs;
    sb::telemetry::Counter* processes_rewritten;
    sb::telemetry::Counter* lookup_hits;
    sb::telemetry::Counter* lookup_misses;
    sb::telemetry::Counter* scan_pages;
    sb::telemetry::Gauge* scan_threads;
    // Fault model & recovery.
    sb::telemetry::Counter* aborted_calls;
    sb::telemetry::Counter* gate_rejections;
    sb::telemetry::Counter* stale_slot_retries;
    sb::telemetry::Counter* revoked_rejections;
    sb::telemetry::Counter* bindings_revoked;
    // Per-phase latency histograms fed from CostBreakdown deltas.
    sb::telemetry::LatencyHistogram* phase_vmfunc;
    sb::telemetry::LatencyHistogram* phase_trampoline;
    sb::telemetry::LatencyHistogram* phase_copy;
    sb::telemetry::LatencyHistogram* phase_syscall;
    sb::telemetry::LatencyHistogram* phase_total;
  };

  mk::Kernel* kernel_;
  SkyBridgeConfig config_;
  Metrics metrics_;
  mutable SkyBridgeStats stats_snapshot_;
  sb::Rng key_rng_;
  TrampolineLayout trampoline_;
  hw::Gpa trampoline_gpa_ = 0;  // Shared trampoline code frame.
  std::vector<ServerEntry> servers_;
  std::vector<std::unique_ptr<Binding>> bindings_;  // Ownership only.
  BindingIndex binding_index_;                      // (client, server) -> binding.
  std::unordered_map<mk::Process*, ClientState> clients_;  // Stable nodes.
  // Epoch for the per-thread route caches. Bindings are never destroyed
  // today, so this only moves if a future path removes one; bump it there to
  // invalidate every thread's cached Binding* at once.
  uint64_t route_generation_ = 1;
  // Fans out the registration-time code-page scans (slow path only).
  sb::ThreadPool scan_pool_;
  hw::Gva next_shared_buf_va_ = 0;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_SKYBRIDGE_H_
