// GuestExecutor: runs real x86-64 instructions *through the simulated MMU*.
//
// Unlike x86::Emulator (flat memory, used to verify the rewriter), this
// executor fetches code and touches the stack via hw::Core's charged
// translation path, and hands VMFUNC to the core's VMCS. It supports exactly
// the instruction subset the SkyBridge trampoline is assembled from, which
// is what it exists to prove: that the literal trampoline bytes, executed on
// the simulated hardware, really do carry a call into another address space
// and back.

#ifndef SRC_SKYBRIDGE_GUEST_EXEC_H_
#define SRC_SKYBRIDGE_GUEST_EXEC_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/hw/core.h"
#include "src/x86/insn.h"

namespace skybridge {

struct GuestRegs {
  uint64_t r[x86::kNumRegs] = {};
  uint64_t rip = 0;

  uint64_t& reg(x86::Reg reg_id) { return r[static_cast<size_t>(reg_id)]; }
};

// The executor stops cleanly when a RET pops this value.
inline constexpr uint64_t kGuestReturnSentinel = 0x5b5bdead5b5bdeadULL;

class GuestExecutor {
 public:
  explicit GuestExecutor(hw::Core* core) : core_(core) {}

  // Executes from regs.rip until a RET pops the sentinel (push it first) or
  // `max_steps` is reached. Each instruction is fetched, decoded and charged
  // through the core. Returns the number of instructions executed.
  sb::StatusOr<uint64_t> Run(GuestRegs& regs, uint64_t max_steps);

  // Executes a single instruction; sets *done when the sentinel RET fires.
  sb::Status Step(GuestRegs& regs, bool* done);

 private:
  hw::Core* core_;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_GUEST_EXEC_H_
