// Gate plane: the crossing entry/return legs, trampoline cost model,
// calling-key check, abort/unwind for a crashed handler, return-gate reply
// validation and per-call phase attribution.
//
// The domain-switch legs themselves are pluggable (backend.h): the gate owns
// one CrossingBackend instance per kind and dispatches each call through the
// backend its routed binding was registered with.
//
// One typed CallContext threads the per-call state through the pipeline —
// every field lives on the caller's stack, so the gate itself holds no
// per-call mutable state and concurrent calls on different simulated cores
// only share the (sharded, atomic) telemetry handles.

#ifndef SRC_SKYBRIDGE_GATE_H_
#define SRC_SKYBRIDGE_GATE_H_

#include <cstdint>
#include <functional>
#include <memory>

#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/mk/kernel.h"
#include "src/skybridge/backend.h"
#include "src/skybridge/buffers.h"
#include "src/skybridge/config.h"
#include "src/skybridge/routing.h"

namespace skybridge {

// Per-call state, built up stage by stage by the DirectServerCall pipeline
// (resolve route -> prepare request -> arm gate -> server side -> return
// gate). Replaces the tangle of locals the call body used to carry.
struct CallContext {
  // ---- Call identity (fixed at entry) ----
  mk::Thread* caller = nullptr;
  ServerId server_id = 0;
  ServerEntry* server = nullptr;
  mk::Process* proc = nullptr;    // caller->process()
  hw::Core* core = nullptr;       // The caller's core for the whole call.
  // Span-tracing id (span.h): the sync call's own id, or for a FlushBatch
  // the crossing id its drained entries correlate to. Always allocated at
  // pipeline entry; only surfaces in traces while tracing is enabled.
  uint64_t call_id = 0;

  // ---- Routing ----
  Binding* perm = nullptr;    // Authorizing binding (caller's registration).
  Binding* route = nullptr;   // Routed binding (chain binding when nested).
  mk::Process* origin = nullptr;  // Process whose CR3 is live at VMFUNC time.
  bool nested = false;
  // The crossing backend this call's server was registered with; resolved
  // with the route and never null past ResolveRoute.
  const CrossingBackend* backend = nullptr;

  // ---- Request staging ----
  SliceRef slice;             // Caller's per-connection buffer slice.
  const mk::Message* request = nullptr;
  mk::Message inplace_msg;    // Storage when the request is a borrowed view.
  bool in_place = false;
  bool long_msg = false;

  // ---- Gate frame ----
  uint64_t entry_ept = 0;     // EPT active at entry; we must return to it.
  size_t return_index = 0;    // EPTP slot the return VMFUNC targets.
  uint32_t route_slot = 0;    // Per-core slot the entry VMFUNC targets.
  // Pins the entry + routed slots for the life of the call (slot faults on
  // other bindings may evict anything else, never these). Owned by the call
  // body; armed after the retry loop settles the slots.
  SlotPinGuard* pins = nullptr;
  uint64_t client_key = 0;    // Per-call key the server echoes on return.
  uint64_t handler_start = 0;
  bool timed_out = false;

  // ---- Phase attribution ----
  // Deltas against bd_before feed the per-phase histograms; pbd points at
  // the caller's breakdown when one was passed, else at local_bd.
  mk::CostBreakdown local_bd;
  mk::CostBreakdown* pbd = nullptr;
  mk::CostBreakdown bd_before;
  uint64_t start_cycles = 0;
};

class Gate {
 public:
  Gate(mk::Kernel& kernel, const SkyBridgeConfig& config);

  // The shared backend instance for `kind` (one per kind, owned here).
  const CrossingBackend& backend(CrossingBackendKind kind) const {
    return *backends_[static_cast<size_t>(kind)];
  }

  // The trampoline leg costs: 64 cycles of save/restore + stack install per
  // direction (Section 6.3) plus the i-side traffic of the trampoline page.
  // The two-argument form charges the EPTP trampoline; pass the backend's
  // trampoline_va() for other view-switch backends.
  void ChargeTrampolineLeg(hw::Core& core, mk::CostBreakdown* bd) const;
  void ChargeTrampolineLeg(hw::Core& core, mk::CostBreakdown* bd, hw::Gva trampoline_va) const;

  // Entry leg: cross into the routed binding's server domain via the call's
  // backend (VMFUNC / WRPKRU / kernel fastpath).
  sb::Status EnterServer(CallContext& ctx) const;

  // Return leg: cross back to the entry domain + the restore trampoline leg
  // (for backends that have one).
  sb::Status ReturnToEntry(CallContext& ctx) const;

  // Server-side calling-key check against the key table (Section 4.4).
  // True when keys are disabled or the presented key matches.
  bool CheckCallingKey(CallContext& ctx) const;

  // Client-side echo verification of the per-call key (illegal-return
  // defence); charges the compare.
  void VerifyReturnKey(CallContext& ctx) const;

  // Unwind for a handler that died mid-call: Rootkernel-mediated view
  // restore (kAbortToView), popped-frame trampoline leg, kernel unwind.
  // Returns the Aborted status the call surfaces (Internal if the
  // Rootkernel refuses the restore).
  sb::Status AbortServerCrash(CallContext& ctx) const;

  // Return-gate structural validation of a borrowed reply descriptor.
  struct ReplyVerdict {
    bool in_place = false;  // Reply bytes already live inside the slice.
    bool corrupt = false;   // Descriptor escapes / straddles the slice.
  };
  ReplyVerdict ClassifyReply(const CallContext& ctx, const mk::Message& reply) const;

  // ---- Batch-dispatch leg (DESIGN.md section 13) ----
  // Runs server-side between the entry and return VMFUNCs of a FlushBatch
  // crossing: drains every pending submission in the ring, invoking the
  // handler per entry and posting each completion (reply bytes in the
  // entry's payload span, then the nonzero status word) without a per-call
  // return crossing. After each round it invokes `refill` — submissions
  // that arrived while the server drained (the client's core keeps
  // producing in real hardware) — and keeps draining while new entries
  // appear, bounded by config.max_drain_rounds (adaptive drain).
  struct DrainOutcome {
    uint32_t completed = 0;  // Completions posted this crossing.
    uint32_t rounds = 0;     // Drain rounds that processed >= 1 entry.
    bool crashed = false;    // Handler died mid-drain; crossing must abort.
  };
  DrainOutcome DrainBatch(CallContext& ctx, const BatchRingView& ring,
                          const std::function<void()>& refill) const;

  // Folds this call's phase deltas into the per-phase histograms at exit.
  void RecordPhases(const CallContext& ctx) const;

  // Slot-fault slow-path latency (DESIGN.md section 15): cycles spent
  // making a non-resident binding resident before the entry VMFUNC.
  void RecordSlotFault(uint64_t cycles) const;

  // Per-call client key (the server must echo it on return). A pure
  // splitmix64 mix of the caller identity and the entry cycle — call-local,
  // so concurrent calls on different cores draw keys without sharing an RNG.
  static uint64_t PerCallKey(const mk::Thread& caller, uint64_t cycles);

 private:
  mk::Kernel* kernel_;
  const SkyBridgeConfig* config_;
  std::unique_ptr<CrossingBackend> backends_[kNumCrossingBackends];
  sb::telemetry::Counter* aborted_calls_;
  sb::telemetry::Counter* gate_rejections_;
  sb::telemetry::LatencyHistogram* phase_slot_fault_;
  sb::telemetry::LatencyHistogram* phase_drain_;
  sb::telemetry::LatencyHistogram* phase_vmfunc_;
  sb::telemetry::LatencyHistogram* phase_trampoline_;
  sb::telemetry::LatencyHistogram* phase_copy_;
  sb::telemetry::LatencyHistogram* phase_syscall_;
  sb::telemetry::LatencyHistogram* phase_total_;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_GATE_H_
