#include "src/skybridge/trampoline.h"

#include "src/x86/assembler.h"

namespace skybridge {

using x86::Assembler;
using x86::Reg;

TrampolineLayout BuildTrampoline(CrossingBackendKind backend) {
  TrampolineLayout layout;
  Assembler a;

  const auto emit_gate = [&](Assembler& asmr) {
    if (backend == CrossingBackendKind::kMpk) {
      asmr.Wrpkru();
    } else {
      asmr.Vmfunc();
    }
  };

  // ---- direct_server_call entry ----
  // Save callee-saved registers the server side may clobber.
  a.PushR(Reg::kRbx);
  a.PushR(Reg::kRbp);
  a.PushR(Reg::kR12);
  a.PushR(Reg::kR13);
  a.PushR(Reg::kR14);
  a.PushR(Reg::kR15);
  // rdi = server id, rsi = calling key, rdx = message tag, rcx = EPTP index,
  // r8 = return EPTP index (the caller's own slot — slot indices are
  // virtualized by the working-set manager, so the return target is dynamic
  // and handed to the stub at dispatch, never a constant).
  // VMFUNC leaf 0 expects eax = 0, ecx = index. The MPK gate reuses the same
  // register discipline: WRPKRU takes the new PKRU rights in eax (0 = grant)
  // with ecx still carrying the domain index for the simulator's view flip.
  a.MovRI32(Reg::kRax, 0);
  layout.call_gate_offset = a.size();
  emit_gate(a);
  // Now executing with the server's page tables: install the server stack
  // (rbp-based frame) and call the registered handler via the function list.
  a.MovRR64(Reg::kRbp, Reg::kRsp);
  a.Nops(4);  // Handler dispatch (indirect call) placeholder.

  // ---- return path ----
  // Top-level returns go back to the caller's own slot carried in r8.
  a.MovRR64(Reg::kRcx, Reg::kR8);
  a.MovRI32(Reg::kRax, 0);
  layout.return_gate_offset = a.size();
  emit_gate(a);
  a.PopR(Reg::kR15);
  a.PopR(Reg::kR14);
  a.PopR(Reg::kR13);
  a.PopR(Reg::kR12);
  a.PopR(Reg::kRbp);
  a.PopR(Reg::kRbx);
  a.Ret();

  layout.code = a.Take();
  return layout;
}

}  // namespace skybridge
