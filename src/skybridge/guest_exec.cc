#include "src/skybridge/guest_exec.h"

#include "src/base/logging.h"
#include "src/x86/decoder.h"

namespace skybridge {
namespace {

uint64_t ReadLittle(std::span<const uint8_t> bytes, size_t off, unsigned len) {
  uint64_t v = 0;
  for (unsigned i = 0; i < len; ++i) {
    v |= static_cast<uint64_t>(bytes[off + i]) << (8 * i);
  }
  return v;
}

}  // namespace

sb::Status GuestExecutor::Step(GuestRegs& regs, bool* done) {
  *done = false;
  // Fetch a decode window through the i-side (charged).
  uint8_t window[15] = {};
  SB_RETURN_IF_ERROR(core_->FetchCode(regs.rip, sizeof(window)));
  SB_RETURN_IF_ERROR(core_->ReadVirt(regs.rip, window));
  const std::span<const uint8_t> bytes(window, sizeof(window));
  const x86::Insn insn = x86::Decode(bytes, 0);
  if (!insn.valid) {
    return sb::Unimplemented("undecodable guest instruction");
  }
  const uint64_t next_rip = regs.rip + insn.length;
  const uint8_t op = window[insn.opcode_off];

  auto push64 = [&](uint64_t value) -> sb::Status {
    regs.reg(x86::Reg::kRsp) -= 8;
    return core_->WriteVirtU64(regs.reg(x86::Reg::kRsp), value);
  };
  auto pop64 = [&]() -> sb::StatusOr<uint64_t> {
    SB_ASSIGN_OR_RETURN(const uint64_t value, core_->ReadVirtU64(regs.reg(x86::Reg::kRsp)));
    regs.reg(x86::Reg::kRsp) += 8;
    return value;
  };

  switch (insn.mnemonic) {
    case x86::Mnemonic::kNop:
      break;
    case x86::Mnemonic::kPush: {
      if (op >= 0x50 && op <= 0x57) {
        const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
        SB_RETURN_IF_ERROR(push64(regs.r[r]));
      } else {
        return sb::Unimplemented("push form not supported in guest executor");
      }
      break;
    }
    case x86::Mnemonic::kPop: {
      const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
      SB_ASSIGN_OR_RETURN(regs.r[r], pop64());
      break;
    }
    case x86::Mnemonic::kMov: {
      if (op >= 0xb8 && op <= 0xbf) {  // mov r32, imm32 (zero-extends).
        const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
        regs.r[r] = ReadLittle(bytes, insn.imm_off, insn.imm_len) & 0xffffffffULL;
      } else if (op == 0x89 && insn.modrm_is_reg()) {  // mov r64, r64
        regs.r[insn.modrm_rm()] = regs.r[insn.modrm_reg()];
      } else {
        return sb::Unimplemented("mov form not supported in guest executor");
      }
      break;
    }
    case x86::Mnemonic::kMovImm64: {
      const uint8_t r = static_cast<uint8_t>((op & 7) | ((insn.rex & 1) << 3));
      regs.r[r] = ReadLittle(bytes, insn.imm_off, insn.imm_len);
      break;
    }
    case x86::Mnemonic::kVmfunc: {
      // The hardware gate: leaf in eax, EPTP index in ecx.
      const uint32_t leaf = static_cast<uint32_t>(regs.reg(x86::Reg::kRax));
      const uint32_t index = static_cast<uint32_t>(regs.reg(x86::Reg::kRcx));
      SB_RETURN_IF_ERROR(core_->Vmfunc(leaf, index));
      break;
    }
    case x86::Mnemonic::kWrpkru: {
      // The MPK gate: new PKRU rights in eax; ecx carries the domain index
      // the simulator uses to flip the active view (see MpkBackend::Enter —
      // WRPKRU itself is unprivileged and performs no validation).
      const uint32_t pkru = static_cast<uint32_t>(regs.reg(x86::Reg::kRax));
      const uint32_t index = static_cast<uint32_t>(regs.reg(x86::Reg::kRcx));
      core_->Wrpkru(pkru);
      if (index >= core_->vmcs().eptp_list.size() ||
          core_->vmcs().eptp_list[index] == nullptr) {
        return sb::InvalidArgument("WRPKRU gate with invalid domain index");
      }
      core_->vmcs().active_index = index;
      break;
    }
    case x86::Mnemonic::kJmpRel: {
      const int64_t disp = static_cast<int64_t>(
          static_cast<int32_t>(ReadLittle(bytes, insn.imm_off, insn.imm_len)
                               << (32 - 8 * insn.imm_len)) >>
          (32 - 8 * insn.imm_len));
      regs.rip = next_rip + static_cast<uint64_t>(disp);
      return sb::OkStatus();
    }
    case x86::Mnemonic::kRet: {
      SB_ASSIGN_OR_RETURN(const uint64_t target, pop64());
      if (target == kGuestReturnSentinel) {
        *done = true;
        return sb::OkStatus();
      }
      regs.rip = target;
      return sb::OkStatus();
    }
    default:
      return sb::Unimplemented("instruction outside the trampoline subset");
  }
  regs.rip = next_rip;
  return sb::OkStatus();
}

sb::StatusOr<uint64_t> GuestExecutor::Run(GuestRegs& regs, uint64_t max_steps) {
  for (uint64_t steps = 0; steps < max_steps; ++steps) {
    bool done = false;
    SB_RETURN_IF_ERROR(Step(regs, &done));
    if (done) {
      return steps + 1;
    }
  }
  return sb::TimeoutError("guest execution did not finish");
}

}  // namespace skybridge
