#include "src/skybridge/skybridge.h"

#include <algorithm>

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"
#include "src/base/units.h"
#include "src/x86/rewriter.h"
#include "src/x86/scanner.h"

namespace skybridge {
namespace {

constexpr uint64_t kServerStackBytes = 64 * sb::kKiB;
constexpr uint64_t kKeySlotBytes = 16;  // {key, client pid}
// Section 6.3: the non-VMFUNC trampoline work costs 64 cycles per direction.
// The charged memory traffic (trampoline i-fetch, calling-key table read,
// stack install) accounts for ~20 of those when warm, so the flat charge is
// the remainder — the measured roundtrip lands on 2 x (134 + 64) = 396.
constexpr uint64_t kTrampolineLegCycles = 44;
// Base backoff before a stale-slot slowpath re-arm; doubles per attempt.
constexpr uint64_t kStaleBackoffCycles = 32;

using sb::telemetry::TraceEventType;

}  // namespace

SkyBridge::SkyBridge(mk::Kernel& kernel, SkyBridgeConfig config)
    : kernel_(&kernel),
      config_(config),
      key_rng_(config.key_seed),
      trampoline_(BuildTrampoline()),
      scan_pool_(config.scan_pool_threads),
      next_shared_buf_va_(mk::kSharedBufVa) {
  SB_CHECK(kernel.rootkernel() != nullptr)
      << "SkyBridge requires a kernel booted with the Rootkernel";
  SB_CHECK(config_.eptp_capacity >= 2 && config_.eptp_capacity <= hw::kEptpListCapacity);
  sb::telemetry::Registry& reg = kernel.machine().telemetry();
  metrics_.direct_calls = &reg.GetCounter("skybridge.ipc.direct_calls");
  metrics_.long_calls = &reg.GetCounter("skybridge.ipc.long_calls");
  metrics_.inplace_calls = &reg.GetCounter("skybridge.ipc.inplace_calls");
  metrics_.inplace_replies = &reg.GetCounter("skybridge.ipc.inplace_replies");
  metrics_.rejected_calls = &reg.GetCounter("skybridge.ipc.rejected_calls");
  metrics_.timeouts = &reg.GetCounter("skybridge.ipc.timeouts");
  metrics_.eptp_misses = &reg.GetCounter("skybridge.ipc.eptp_misses");
  metrics_.rewritten_vmfuncs = &reg.GetCounter("skybridge.rewrite.vmfuncs");
  metrics_.processes_rewritten = &reg.GetCounter("skybridge.rewrite.processes");
  metrics_.lookup_hits = &reg.GetCounter("skybridge.lookup.hits");
  metrics_.lookup_misses = &reg.GetCounter("skybridge.lookup.misses");
  metrics_.scan_pages = &reg.GetCounter("skybridge.rewrite.scan_pages");
  metrics_.scan_threads = &reg.GetGauge("skybridge.rewrite.scan_threads");
  metrics_.aborted_calls = &reg.GetCounter("skybridge.ipc.aborted_calls");
  metrics_.gate_rejections = &reg.GetCounter("skybridge.ipc.gate_rejections");
  metrics_.stale_slot_retries = &reg.GetCounter("skybridge.ipc.stale_slot_retries");
  metrics_.revoked_rejections = &reg.GetCounter("skybridge.ipc.revoked_rejections");
  metrics_.bindings_revoked = &reg.GetCounter("skybridge.bindings.revoked");
  metrics_.phase_vmfunc = &reg.GetHistogram("skybridge.phase.vmfunc");
  metrics_.phase_trampoline = &reg.GetHistogram("skybridge.phase.trampoline");
  metrics_.phase_copy = &reg.GetHistogram("skybridge.phase.copy");
  metrics_.phase_syscall = &reg.GetHistogram("skybridge.phase.syscall");
  metrics_.phase_total = &reg.GetHistogram("skybridge.phase.total");
  sb::telemetry::InstallTraceCrashDump();
  // One shared trampoline code frame for all processes.
  auto frame = kernel.guest_frames().Alloc(kernel.machine().mem());
  SB_CHECK(frame.ok());
  trampoline_gpa_ = *frame;
  kernel.machine().mem().Write(trampoline_gpa_, trampoline_.code);
}

const SkyBridgeStats& SkyBridge::stats() const {
  stats_snapshot_.direct_calls = metrics_.direct_calls->Value();
  stats_snapshot_.long_calls = metrics_.long_calls->Value();
  stats_snapshot_.inplace_calls = metrics_.inplace_calls->Value();
  stats_snapshot_.inplace_replies = metrics_.inplace_replies->Value();
  stats_snapshot_.rejected_calls = metrics_.rejected_calls->Value();
  stats_snapshot_.timeouts = metrics_.timeouts->Value();
  stats_snapshot_.eptp_misses = metrics_.eptp_misses->Value();
  stats_snapshot_.rewritten_vmfuncs = metrics_.rewritten_vmfuncs->Value();
  stats_snapshot_.processes_rewritten = metrics_.processes_rewritten->Value();
  stats_snapshot_.binding_lookup_hits = metrics_.lookup_hits->Value();
  stats_snapshot_.binding_lookup_misses = metrics_.lookup_misses->Value();
  stats_snapshot_.scan_pages = metrics_.scan_pages->Value();
  stats_snapshot_.scan_threads = metrics_.scan_threads->Value();
  stats_snapshot_.aborted_calls = metrics_.aborted_calls->Value();
  stats_snapshot_.gate_rejections = metrics_.gate_rejections->Value();
  stats_snapshot_.stale_slot_retries = metrics_.stale_slot_retries->Value();
  stats_snapshot_.revoked_rejections = metrics_.revoked_rejections->Value();
  stats_snapshot_.bindings_revoked = metrics_.bindings_revoked->Value();
  return stats_snapshot_;
}

sb::Status SkyBridge::RewriteProcessImage(mk::Process* process) {
  if (process->code_rewritten() || !config_.rewrite_binaries) {
    return sb::OkStatus();
  }
  x86::RewriteConfig rw;
  rw.code_base = mk::kCodeVa;
  rw.rewrite_page_base = mk::kRewritePageVa;
  rw.scan_pool = &scan_pool_;
  SB_ASSIGN_OR_RETURN(x86::RewriteResult result,
                      x86::RewriteVmfunc(process->code_image(), rw));
  metrics_.rewritten_vmfuncs->Add(
      static_cast<uint64_t>(result.stats.nop_replaced + result.stats.windows_relocated));
  metrics_.scan_pages->Add(result.stats.scan_pages);
  metrics_.scan_threads->SetMax(result.stats.scan_threads);
  SB_LOG(kDebug) << "rewrite " << sb::kv("pid", process->pid())
                 << " " << sb::kv("scan_pages", result.stats.scan_pages)
                 << " " << sb::kv("scan_threads", result.stats.scan_threads);

  // Write the rewritten image back over the process's code pages.
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  SB_CHECK(code_walk.ok);
  kernel_->machine().mem().Write(code_walk.gpa, result.code);
  process->set_code_image(std::move(result.code));

  // Map and fill the rewrite page (the deliberately-unmapped second page).
  if (!result.rewrite_page.empty()) {
    hw::PageFlags flags;
    flags.writable = false;
    SB_ASSIGN_OR_RETURN(
        const hw::Gpa rw_gpa,
        process->address_space().MapAnonymous(
            mk::kRewritePageVa, sb::PageUp(result.rewrite_page.size()), flags));
    kernel_->machine().mem().Write(rw_gpa, result.rewrite_page);
  }
  process->set_code_rewritten(true);
  metrics_.processes_rewritten->Add();
  return sb::OkStatus();
}

sb::Status SkyBridge::UpdateProcessCode(mk::Process* process, std::vector<uint8_t> new_image) {
  if (new_image.size() > mk::kCodeSize) {
    return sb::InvalidArgument("code image larger than the code window");
  }
  // The generation phase: code pages are writable and non-executable; the
  // new bytes land in place.
  const hw::GuestWalk code_walk = process->address_space().WalkVa(mk::kCodeVa);
  if (!code_walk.ok) {
    return sb::FailedPrecondition("process has no code mapping");
  }
  kernel_->machine().mem().Write(code_walk.gpa, new_image);
  process->set_code_image(std::move(new_image));
  // Remap executable: the Subkernel rescans before the pages may run again.
  process->set_code_rewritten(false);
  // Drop any previous rewrite page so the rescan can lay out fresh snippets.
  for (hw::Gva va = mk::kRewritePageVa;
       process->address_space().WalkVa(va).ok && va < mk::kRewritePageVa + 16 * sb::kPageSize;
       va += sb::kPageSize) {
    SB_RETURN_IF_ERROR(process->address_space().Unmap(va));
  }
  return RewriteProcessImage(process);
}

sb::Status SkyBridge::EnsureProcessPrepared(mk::Process* process) {
  SB_RETURN_IF_ERROR(RewriteProcessImage(process));
  // Trampoline page (exec-only for users, shared frame).
  if (!process->address_space().WalkVa(mk::kTrampolineVa).ok) {
    hw::PageFlags flags;
    flags.writable = false;
    SB_RETURN_IF_ERROR(process->address_space().MapRange(
        mk::kTrampolineVa, trampoline_gpa_, sb::kPageSize, flags));
  }
  // Per-process calling-key table page.
  if (!process->address_space().WalkVa(mk::kCallingKeyTableVa).ok) {
    SB_RETURN_IF_ERROR(
        process->address_space()
            .MapAnonymous(mk::kCallingKeyTableVa, sb::kPageSize, hw::PageFlags{})
            .status());
  }
  return sb::OkStatus();
}

sb::StatusOr<ServerId> SkyBridge::RegisterServer(mk::Process* server, int max_connections,
                                                 mk::Handler handler) {
  if (max_connections <= 0 || max_connections > 256) {
    return sb::InvalidArgument("connection count out of range");
  }
  SB_RETURN_IF_ERROR(EnsureProcessPrepared(server));

  const ServerId id = servers_.size();
  // Per-connection server stacks (Section 4.4: the stack count bounds the
  // concurrency the server supports).
  const hw::Gva stacks_va = mk::kServerStacksVa + id * 256 * kServerStackBytes;
  SB_RETURN_IF_ERROR(server->address_space()
                         .MapAnonymous(stacks_va,
                                       static_cast<uint64_t>(max_connections) * kServerStackBytes,
                                       hw::PageFlags{})
                         .status());

  ServerEntry entry;
  entry.id = id;
  entry.process = server;
  entry.handler = std::move(handler);
  entry.max_connections = max_connections;
  entry.handler_va = mk::kCodeVa + 0x100;
  servers_.push_back(std::move(entry));
  return id;
}

size_t SkyBridge::BindingIndex::Hash(const mk::Process* client, ServerId server) {
  // splitmix64 finalizer over the pointer/id mix: cheap and well spread for
  // linear probing.
  uint64_t x = reinterpret_cast<uintptr_t>(client) ^ (server * 0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

SkyBridge::Binding* SkyBridge::BindingIndex::Find(const mk::Process* client,
                                                 ServerId server) const {
  const size_t mask = slots_.size() - 1;
  for (size_t i = Hash(client, server) & mask;; i = (i + 1) & mask) {
    Binding* b = slots_[i];
    if (b == nullptr) {
      return nullptr;
    }
    if (b->client == client && b->server == server) {
      return b;
    }
  }
}

void SkyBridge::BindingIndex::Insert(Binding* binding) {
  if ((size_ + 1) * 4 > slots_.size() * 3) {  // Keep load factor under 3/4.
    Grow();
  }
  const size_t mask = slots_.size() - 1;
  size_t i = Hash(binding->client, binding->server) & mask;
  while (slots_[i] != nullptr) {
    i = (i + 1) & mask;
  }
  slots_[i] = binding;
  ++size_;
}

void SkyBridge::BindingIndex::Grow() {
  std::vector<Binding*> old = std::move(slots_);
  slots_.assign(old.size() * 2, nullptr);
  const size_t mask = slots_.size() - 1;
  for (Binding* b : old) {
    if (b == nullptr) {
      continue;
    }
    size_t i = Hash(b->client, b->server) & mask;
    while (slots_[i] != nullptr) {
      i = (i + 1) & mask;
    }
    slots_[i] = b;
  }
}

SkyBridge::Binding* SkyBridge::FindBinding(mk::Process* client, ServerId server) {
  return binding_index_.Find(client, server);
}

SkyBridge::Binding* SkyBridge::LookupRoute(mk::Thread* caller, ServerId server) {
  hw::Core& core = kernel_->machine().core(caller->core_id());
  mk::Thread::RouteCache& cache = caller->route_cache();
  if (cache.generation == route_generation_ && cache.key == server && cache.route != nullptr) {
    Binding* cached = static_cast<Binding*>(cache.route);
    if (cached->client == caller->process()) {
      metrics_.lookup_hits->Add();
      SB_TRACE_EVENT(TraceEventType::kLookupHit, core.cycles(), core.id(),
                     caller->process()->pid(), server);
      return cached;
    }
  }
  metrics_.lookup_misses->Add();
  Binding* binding = binding_index_.Find(caller->process(), server);
  SB_TRACE_EVENT(binding != nullptr ? TraceEventType::kLookupHit : TraceEventType::kLookupMiss,
                 core.cycles(), core.id(), caller->process()->pid(), server);
  if (binding != nullptr) {
    cache.key = server;
    cache.route = binding;
    cache.generation = route_generation_;
  }
  return binding;
}

SkyBridge::Binding* SkyBridge::AdoptBinding(std::unique_ptr<Binding> binding) {
  Binding* b = binding.get();
  ClientState& state = clients_[b->client];  // Node pointers are stable.
  b->lru_owner = &state;
  b->lru_next = state.lru_head;
  if (state.lru_head != nullptr) {
    state.lru_head->lru_prev = b;
  }
  state.lru_head = b;
  if (state.lru_tail == nullptr) {
    state.lru_tail = b;
  }
  binding_index_.Insert(b);
  bindings_.push_back(std::move(binding));
  return b;
}

void SkyBridge::TouchLru(Binding& binding) {
  ClientState& state = *binding.lru_owner;
  if (state.lru_head == &binding) {
    return;
  }
  // Unlink, then relink at the head — pure pointer surgery, no traversal.
  if (binding.lru_prev != nullptr) {
    binding.lru_prev->lru_next = binding.lru_next;
  }
  if (binding.lru_next != nullptr) {
    binding.lru_next->lru_prev = binding.lru_prev;
  }
  if (state.lru_tail == &binding) {
    state.lru_tail = binding.lru_prev;
  }
  binding.lru_prev = nullptr;
  binding.lru_next = state.lru_head;
  state.lru_head->lru_prev = &binding;
  state.lru_head = &binding;
}

size_t SkyBridge::EptpSlotOfId(const std::vector<uint64_t>& ids, uint64_t ept_id) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] == ept_id) {
      return i;
    }
  }
  return kSlotNotFound;
}

void SkyBridge::RefreshEptpSlots(mk::Process* client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return;
  }
  const auto& ids = client->eptp_list_ids();
  std::unordered_map<uint64_t, uint32_t> slot_of;
  slot_of.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    slot_of.emplace(ids[i], static_cast<uint32_t>(i));
  }
  for (Binding* b = it->second.lru_head; b != nullptr; b = b->lru_next) {
    if (!b->installed) {
      b->eptp_slot = kNoEptpSlot;
      continue;
    }
    auto found = slot_of.find(b->ept_id);
    SB_CHECK(found != slot_of.end()) << "installed binding missing from the EPTP list";
    b->eptp_slot = found->second;
  }
}

sb::Status SkyBridge::InstallBinding(hw::Core& core, Binding& binding, uint64_t pinned_ept) {
  auto& ids = binding.client->eptp_list_ids();
  bool reshuffled = false;
  // Slot 0 is the client's own EPT; bindings occupy the rest.
  while (ids.size() + 1 > config_.eptp_capacity) {
    // Evict the least-recently-used installed binding (paper Section 10),
    // walking the intrusive list from its cold end.
    Binding* victim = nullptr;
    for (Binding* b = binding.lru_owner->lru_tail; b != nullptr; b = b->lru_prev) {
      if (b->installed && b != &binding && b->ept_id != pinned_ept && b->in_flight == 0) {
        victim = b;
        break;
      }
    }
    if (victim == nullptr) {
      return sb::ResourceExhausted("EPTP list full and nothing evictable");
    }
    SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), victim->server,
                   victim->eptp_slot);
    SB_LOG(kDebug) << "eptp evict " << sb::kv("client", binding.client->pid())
                   << " " << sb::kv("server", victim->server)
                   << " " << sb::kv("slot", victim->eptp_slot);
    victim->installed = false;
    victim->eptp_slot = kNoEptpSlot;
    ids.erase(std::remove(ids.begin(), ids.end(), victim->ept_id), ids.end());
    reshuffled = true;  // Later slots shifted down; caches are now stale.
  }
  const size_t existing = EptpSlotOfId(ids, binding.ept_id);
  if (existing == kSlotNotFound) {
    ids.push_back(binding.ept_id);
    binding.eptp_slot = static_cast<uint32_t>(ids.size() - 1);
  } else {
    binding.eptp_slot = static_cast<uint32_t>(existing);
  }
  binding.installed = true;
  if (reshuffled) {
    // Central invalidation point: recompute every cached slot for this
    // client so no binding carries a stale index.
    RefreshEptpSlots(binding.client);
  }
  // Reinstall the EPTP list on every core currently running this client.
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    if (kernel_->current_process(i) == binding.client) {
      SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(kernel_->machine().core(i), binding.client));
    }
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::RegisterClient(mk::Process* client, ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  ServerEntry& server = servers_[server_id];
  if (Binding* existing = FindBinding(client, server_id); existing != nullptr) {
    if (!existing->revoked) {
      return sb::AlreadyExists("client already registered to this server");
    }
    // Revival: the record persisted through revocation (bindings are never
    // destroyed). Re-registration issues a fresh calling key and reinstalls
    // the EPT entry; the buffer region and EPT id are reused as-is.
    hw::Core& core = kernel_->machine().core(0);
    kernel_->SyscallEnter(core, nullptr);
    const uint64_t key = key_rng_.Next();
    const hw::GuestWalk table = server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
    SB_CHECK(table.ok);
    kernel_->machine().mem().WriteU64(table.gpa + existing->key_slot * kKeySlotBytes, key);
    existing->server_key = key;
    existing->revoked = false;
    sb::Status install = sb::OkStatus();
    if (!existing->installed) {
      install = InstallBinding(core, *existing, /*pinned_ept=*/0);
    }
    kernel_->SyscallExit(core, nullptr);
    return install;
  }
  if (server.next_connection >= static_cast<uint64_t>(server.max_connections)) {
    return sb::ResourceExhausted("server connection limit reached");
  }
  SB_RETURN_IF_ERROR(EnsureProcessPrepared(client));

  hw::Core& core = kernel_->machine().core(0);
  // Registration is a syscall: charge the kernel path.
  kernel_->SyscallEnter(core, nullptr);

  // The Rootkernel derives the binding EPT: shallow copy of the base EPT
  // with the client's CR3 GPA remapped to the server's page-table root and
  // the identity GPA remapped to the server's identity frame.
  const uint64_t ept_id =
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateBindingEpt), client->cr3(),
                  server.process->cr3());
  if (ept_id == vmm::kHypercallError) {
    kernel_->SyscallExit(core, nullptr);
    return sb::Internal("rootkernel refused binding EPT");
  }
  if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                  kernel_->identity_gpa(), server.process->identity_frame()) != 0) {
    kernel_->SyscallExit(core, nullptr);
    return sb::Internal("rootkernel refused identity remap");
  }

  // Shared buffer region for long messages: same VA, same frames, both
  // processes. The region is carved into per-connection slices (Section 6.3
  // per-thread buffers): `buffer_slices` page-aligned slices, each with
  // shared_buffer_bytes of capacity, so concurrent connections of this
  // binding never alias one buffer.
  const uint64_t slice_stride = sb::PageUp(config_.shared_buffer_bytes);
  const uint64_t num_slices = std::max<uint64_t>(1, config_.buffer_slices);
  const uint64_t region_bytes = slice_stride * num_slices;
  const hw::Gva buf_va = next_shared_buf_va_;
  next_shared_buf_va_ += region_bytes;
  SB_ASSIGN_OR_RETURN(const hw::Gpa buf_gpa,
                      client->address_space().MapAnonymous(
                          buf_va, region_bytes, hw::PageFlags{}));
  SB_RETURN_IF_ERROR(server.process->address_space().MapRange(
      buf_va, buf_gpa, region_bytes, hw::PageFlags{}));
  // Give the region one host-contiguous backing so in-place messages can be
  // exposed as a single span. Guest frames are identity-mapped by the base
  // EPT (GPA == HPA), so the GPA range addresses host memory directly.
  kernel_->machine().mem().BackContiguous(buf_gpa, region_bytes);
  uint8_t* host_base = kernel_->machine().mem().ContiguousSpan(buf_gpa, region_bytes);
  SB_CHECK(host_base != nullptr) << "shared buffer region not host-contiguous";

  // Calling key: random 8 bytes, written into the server's key table.
  const uint64_t key = key_rng_.Next();
  const uint64_t slot = server.next_connection++;
  const hw::GuestWalk table = server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
  SB_CHECK(table.ok);
  kernel_->machine().mem().WriteU64(table.gpa + slot * kKeySlotBytes, key);
  kernel_->machine().mem().WriteU64(table.gpa + slot * kKeySlotBytes + 8, client->pid());

  auto binding = std::make_unique<Binding>();
  binding->client = client;
  binding->server = server_id;
  binding->ept_id = ept_id;
  binding->server_key = key;
  binding->shared_buf = buf_va;
  binding->key_slot = slot;
  binding->slice_stride = slice_stride;
  binding->num_slices = static_cast<uint32_t>(num_slices);
  binding->host_base = host_base;
  binding->installed = false;
  Binding* b = AdoptBinding(std::move(binding));

  const sb::Status install = InstallBinding(core, *b, /*pinned_ept=*/0);
  kernel_->SyscallExit(core, nullptr);
  return install;
}

sb::StatusOr<SkyBridge::Binding*> SkyBridge::GetOrCreateChainBinding(hw::Core& core,
                                                                     mk::Process* origin,
                                                                     ServerId server_id) {
  Binding* existing = FindBinding(origin, server_id);
  if (existing != nullptr) {
    return existing;
  }
  // Lazy chain setup: kernel + Rootkernel mediated (slow path).
  ServerEntry& server = servers_[server_id];
  const uint64_t ept_id =
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateBindingEpt), origin->cr3(),
                  server.process->cr3());
  if (ept_id == vmm::kHypercallError) {
    return sb::Internal("rootkernel refused chain binding EPT");
  }
  if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                  kernel_->identity_gpa(), server.process->identity_frame()) != 0) {
    return sb::Internal("rootkernel refused identity remap");
  }
  auto binding = std::make_unique<Binding>();
  binding->client = origin;
  binding->server = server_id;
  binding->ept_id = ept_id;
  binding->server_key = 0;
  binding->shared_buf = 0;
  binding->key_slot = 0;
  binding->installed = false;
  binding->chain = true;
  return AdoptBinding(std::move(binding));
}

void SkyBridge::ChargeTrampolineLeg(hw::Core& core, mk::CostBreakdown* bd) {
  core.AdvanceCycles(kTrampolineLegCycles);
  (void)core.FetchCode(mk::kTrampolineVa, 128);
  if (bd != nullptr) {
    bd->others += kTrampolineLegCycles;
  }
}

SkyBridge::SliceRef SkyBridge::SliceOf(const Binding& binding, const mk::Thread* caller) const {
  SliceRef ref;
  if (binding.shared_buf == 0) {
    return ref;  // Chain bindings carry no buffer.
  }
  const uint64_t slices = binding.num_slices != 0 ? binding.num_slices : 1;
  const uint64_t stride =
      binding.slice_stride != 0 ? binding.slice_stride : sb::PageUp(config_.shared_buffer_bytes);
  const uint64_t index = static_cast<uint64_t>(caller->tid()) % slices;
  ref.va = binding.shared_buf + index * stride;
  if (binding.host_base != nullptr) {
    ref.host = std::span<uint8_t>(binding.host_base + index * stride,
                                  static_cast<size_t>(config_.shared_buffer_bytes));
  }
  return ref;
}

sb::StatusOr<std::span<uint8_t>> SkyBridge::AcquireSendBuffer(mk::Thread* caller,
                                                              ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* perm = LookupRoute(caller, server_id);
  if (perm == nullptr) {
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("client not registered to server");
  }
  if (perm->revoked) {
    metrics_.revoked_rejections->Add();
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("binding revoked");
  }
  const SliceRef slice = SliceOf(*perm, caller);
  if (slice.host.empty()) {
    return sb::FailedPrecondition("binding has no shared buffer");
  }
  return slice.host;
}

sb::StatusOr<mk::Message> SkyBridge::DirectServerCall(mk::Thread* caller, ServerId server_id,
                                                      const mk::Message& msg,
                                                      mk::CostBreakdown* bd) {
  return CallCommon(caller, server_id, &msg, 0, 0, /*in_place=*/false, bd);
}

sb::StatusOr<mk::Message> SkyBridge::DirectServerCallInPlace(mk::Thread* caller,
                                                             ServerId server_id, uint64_t tag,
                                                             uint64_t len,
                                                             mk::CostBreakdown* bd) {
  return CallCommon(caller, server_id, nullptr, tag, len, /*in_place=*/true, bd);
}

sb::StatusOr<mk::Message> SkyBridge::CallCommon(mk::Thread* caller, ServerId server_id,
                                                const mk::Message* msg_in, uint64_t inplace_tag,
                                                uint64_t inplace_len, bool in_place,
                                                mk::CostBreakdown* bd) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  ServerEntry& server = servers_[server_id];
  mk::Process* proc = caller->process();
  hw::Core& core = kernel_->machine().core(caller->core_id());

  // Phase attribution: always measured, even when the caller did not ask for
  // a breakdown — the per-phase histograms are fed from the deltas. The
  // local breakdown records only; it charges no cycles.
  mk::CostBreakdown local_bd;
  mk::CostBreakdown* pbd = bd != nullptr ? bd : &local_bd;
  const mk::CostBreakdown bd_before = *pbd;
  const uint64_t call_start_cycles = core.cycles();
  SB_TRACE_EVENT(TraceEventType::kCallStart, core.cycles(), core.id(), proc->pid(),
                 server.process->pid());

  // Authorization comes from the caller's own registration. The lookup is
  // O(1): per-thread last-route cache, then the (client, server) hash index.
  Binding* perm = LookupRoute(caller, server_id);
  if (perm == nullptr) {
    // Unregistered caller: the trampoline has no binding EPT to switch to;
    // the attempt is rejected and the kernel notified.
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "call rejected " << sb::kv("client", proc->pid())
                   << " " << sb::kv("server", server.process->pid())
                   << " " << sb::kv("reason", "unregistered");
    return sb::PermissionDenied("client not registered to server");
  }
  if (perm->revoked) {
    // Revoked bindings refuse new entries; in-flight calls already past this
    // gate drain normally (the sweep waits for them).
    metrics_.revoked_rejections->Add();
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "call rejected " << sb::kv("client", proc->pid())
                   << " " << sb::kv("server", server.process->pid())
                   << " " << sb::kv("reason", "revoked");
    return sb::PermissionDenied("binding revoked");
  }

  // The caller's per-connection slice. Authorization (and the buffer) always
  // come from the caller's own binding, even when a nested call routes the
  // VMFUNC through a chain binding.
  const SliceRef slice = SliceOf(*perm, caller);
  mk::Message inplace_msg;
  if (in_place) {
    if (slice.host.empty()) {
      return sb::FailedPrecondition("binding has no shared buffer");
    }
    if (inplace_len > config_.shared_buffer_bytes) {
      metrics_.rejected_calls->Add();
      return sb::OutOfRange("message exceeds shared buffer");
    }
    inplace_msg = mk::Message::Borrowed(
        inplace_tag, std::span<const uint8_t>(slice.host.data(), inplace_len));
    msg_in = &inplace_msg;
  }
  const mk::Message& msg = *msg_in;

  // Determine the live translation origin. A nested call (the caller is
  // itself a server currently entered via SkyBridge) keeps the original
  // client's CR3 live, so the EPT must map *that* CR3 to the target.
  mk::Process* origin = kernel_->current_process(core.id());
  bool nested = false;
  if (origin != proc) {
    auto identity = kernel_->CurrentIdentity(core);
    if (identity.ok() && *identity == proc->pid()) {
      nested = true;  // Entered via a prior VMFUNC; origin's CR3 is live.
    } else {
      // Plain scheduling mismatch: dispatch the caller.
      SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(core, proc, pbd));
      origin = proc;
    }
  }

  Binding* route = perm;
  if (nested) {
    SB_ASSIGN_OR_RETURN(route, GetOrCreateChainBinding(core, origin, server_id));
  }

  // In-flight accounting brackets the call on every exit path (both the
  // authorizing binding and the routed one when they differ). Revocation
  // never reshapes an EPTP list under a live call — it defers to this
  // guard's drain.
  struct DrainGuard {
    SkyBridge* sky = nullptr;
    Binding* a = nullptr;
    Binding* b = nullptr;
    void Begin(SkyBridge* s, Binding* perm, Binding* route) {
      sky = s;
      a = perm;
      b = route != perm ? route : nullptr;
      ++a->in_flight;
      ++a->lru_owner->inflight;
      if (b != nullptr) {
        ++b->in_flight;
        ++b->lru_owner->inflight;
      }
    }
    ~DrainGuard() {
      if (sky == nullptr) {
        return;
      }
      if (b != nullptr) {
        sky->FinishCall(*b);
      }
      sky->FinishCall(*a);
    }
  } drain_guard;
  drain_guard.Begin(this, perm, route);

  // The EPT active at entry: we must return to it (slot 0 for a top-level
  // call, the enclosing binding's EPT for a nested one).
  const auto& origin_ids = origin->eptp_list_ids();
  const size_t entry_index = core.vmcs().active_index;
  SB_CHECK(entry_index < origin_ids.size() || entry_index == 0);
  const uint64_t entry_ept = entry_index < origin_ids.size() ? origin_ids[entry_index] : 0;

  // On the hit path the EPTP list is untouched, so the return slot is simply
  // the slot we entered on — no scan.
  size_t return_index = entry_ept != 0 ? entry_index : 0;
  if (!route->installed) {
    // LRU-evicted earlier (or a fresh chain binding): install it.
    metrics_.eptp_misses->Add();
    SB_TRACE_EVENT(TraceEventType::kEptpMiss, core.cycles(), core.id(),
                   server.process->pid());
    SB_LOG(kDebug) << "eptp miss " << sb::kv("client", origin->pid())
                   << " " << sb::kv("server", server.process->pid());
    kernel_->SyscallEnter(core, pbd);
    SB_RETURN_IF_ERROR(InstallBinding(core, *route, entry_ept));
    kernel_->SyscallExit(core, pbd);
    SB_TRACE_EVENT(TraceEventType::kEptpReinstall, core.cycles(), core.id(),
                   server.process->pid(), route->eptp_slot);
    // Reinstallation may have shuffled slots; restore the entry view index
    // (one scan, on the sanctioned slow path only).
    const size_t entry_slot = EptpSlotOfId(origin_ids, entry_ept);
    if (entry_slot != kSlotNotFound) {
      core.vmcs().active_index = entry_slot;
      return_index = entry_slot;
    } else {
      return_index = 0;
    }
  }
  TouchLru(*route);

  // ---- Client-side trampoline ----
  ChargeTrampolineLeg(core, pbd);
  const bool long_msg = in_place || msg.size() > kernel_->profile().register_msg_capacity;
  if (long_msg) {
    metrics_.long_calls->Add();
    if (msg.size() > config_.shared_buffer_bytes || slice.va == 0) {
      metrics_.rejected_calls->Add();
      return sb::OutOfRange("message exceeds shared buffer");
    }
    if (in_place) {
      // The client already built the payload in its slice: no request copy.
      metrics_.inplace_calls->Add();
    } else {
      const uint64_t before = core.cycles();
      SB_RETURN_IF_ERROR(core.WriteVirt(slice.va, msg.payload()));
      pbd->copy += core.cycles() - before;
    }
  }
  // The client's per-call key; the server must echo it on return.
  const uint64_t client_key = key_rng_.Next();

  // The binding's slot is cached and centrally maintained; no EPTP scan on
  // the hit path. A concurrent registration can still LRU-evict the binding
  // between lookup and this point (the pre_vmfunc fault injects exactly
  // that): detect the stale slot and re-arm via the slowpath with bounded
  // exponential backoff instead of dying on the old SB_CHECK.
  for (uint64_t attempt = 0;; ++attempt) {
    if (SB_FAULT_POINT(kFaultPreVmfunc)) {
      FaultEvict(core, *route);
    }
    if (route->installed && route->eptp_slot != kNoEptpSlot) {
      break;
    }
    if (attempt >= config_.max_stale_slot_retries) {
      metrics_.rejected_calls->Add();
      SB_LOG(kDebug) << "stale-slot retries exhausted " << sb::kv("client", origin->pid())
                     << " " << sb::kv("server", server.process->pid());
      const size_t entry_slot = EptpSlotOfId(origin_ids, entry_ept);
      core.vmcs().active_index =
          entry_ept != 0 && entry_slot != kSlotNotFound ? entry_slot : 0;
      return sb::Unavailable("EPTP slot evicted repeatedly before VMFUNC");
    }
    metrics_.stale_slot_retries->Add();
    SB_TRACE_EVENT(TraceEventType::kStaleSlotRetry, core.cycles(), core.id(),
                   server.process->pid(), attempt);
    core.AdvanceCycles(kStaleBackoffCycles << attempt);
    kernel_->SyscallEnter(core, pbd);
    const sb::Status rearm = InstallBinding(core, *route, entry_ept);
    kernel_->SyscallExit(core, pbd);
    SB_RETURN_IF_ERROR(rearm);
    const size_t entry_slot = EptpSlotOfId(origin_ids, entry_ept);
    if (entry_ept != 0 && entry_slot != kSlotNotFound) {
      core.vmcs().active_index = entry_slot;
      return_index = entry_slot;
    } else {
      return_index = 0;
    }
  }
  const uint64_t before_vmfunc = core.cycles();
  SB_RETURN_IF_ERROR(core.Vmfunc(0, route->eptp_slot));
  pbd->vmfunc += core.cycles() - before_vmfunc;
  SB_TRACE_EVENT(TraceEventType::kVmfuncSwitch, core.cycles(), core.id(), route->eptp_slot);

  auto return_to_entry = [&]() -> sb::Status {
    const uint64_t t0 = core.cycles();
    SB_RETURN_IF_ERROR(core.Vmfunc(0, static_cast<uint32_t>(return_index)));
    pbd->vmfunc += core.cycles() - t0;
    SB_TRACE_EVENT(TraceEventType::kVmfuncSwitch, core.cycles(), core.id(), return_index);
    ChargeTrampolineLeg(core, pbd);
    return sb::OkStatus();
  };

  // Fold this call's phase deltas into the per-phase histograms at exit.
  auto record_phases = [&]() {
    metrics_.phase_vmfunc->Record(pbd->vmfunc - bd_before.vmfunc);
    metrics_.phase_trampoline->Record(pbd->others - bd_before.others);
    metrics_.phase_copy->Record(pbd->copy - bd_before.copy);
    metrics_.phase_syscall->Record(pbd->syscall_sysret - bd_before.syscall_sysret);
    metrics_.phase_total->Record(core.cycles() - call_start_cycles);
  };

  // ---- Server side (server address space, same core, no kernel) ----
  // Calling-key check against the server's table (Section 4.4).
  bool key_ok = true;
  if (config_.calling_keys) {
    const hw::Gva slot_va = mk::kCallingKeyTableVa + perm->key_slot * kKeySlotBytes;
    auto stored = core.ReadVirtU64(slot_va);
    if (!stored.ok()) {
      key_ok = false;
    } else {
      core.AdvanceCycles(8);  // Compare + branch.
      key_ok = (*stored == perm->server_key);
    }
  }
  if (!key_ok) {
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "call rejected " << sb::kv("client", proc->pid())
                   << " " << sb::kv("server", server.process->pid())
                   << " " << sb::kv("reason", "calling_key");
    SB_RETURN_IF_ERROR(return_to_entry());
    return sb::PermissionDenied("calling key rejected");
  }

  // Install the per-connection server stack.
  const hw::Gva stack_va = mk::kServerStacksVa + server_id * 256 * kServerStackBytes +
                           perm->key_slot * kServerStackBytes;
  (void)core.TouchData(stack_va + kServerStackBytes - 64, 64, true);

  const uint64_t handler_start = core.cycles();
  SB_TRACE_EVENT(TraceEventType::kHandlerEnter, core.cycles(), core.id(),
                 server.process->pid());
  // Handler request view: in the default modes a long request is served as a
  // borrowed view over the slice — the handler reads the shared buffer, not
  // a copied-out vector. The legacy two-copy ablation keeps the owned copy.
  mk::Message borrowed_req;
  const mk::Message* handler_req = &msg;
  if (long_msg && !config_.legacy_two_copy && !slice.host.empty()) {
    borrowed_req = mk::Message::Borrowed(
        msg.tag, std::span<const uint8_t>(slice.host.data(), msg.size()));
    handler_req = &borrowed_req;
  }
  mk::CallEnv env{*kernel_, core, *server.process, *handler_req};
  if (!config_.legacy_two_copy && !slice.host.empty()) {
    // Offer the slice for in-place reply construction (zero-copy replies).
    env.reply_buffer = slice.host;
    env.reply_buffer_va = slice.va;
  }
  if (SB_FAULT_POINT(kFaultHandlerCrash)) {
    // The server thread dies mid-handler, stranding the client in the
    // server's address space. The Rootkernel mediates the abort: restore the
    // client's entry view, pop the trampoline frame, wake the blocked caller
    // and surface Aborted instead of a wedged call.
    metrics_.aborted_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kCallAborted, core.cycles(), core.id(), proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "handler crash " << sb::kv("client", proc->pid())
                   << " " << sb::kv("server", server.process->pid());
    const uint64_t abort_start = core.cycles();
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAbortToView),
                    static_cast<uint64_t>(return_index)) == vmm::kHypercallError) {
      return sb::Internal("rootkernel refused the abort view restore");
    }
    pbd->others += core.cycles() - abort_start;
    ChargeTrampolineLeg(core, pbd);  // The popped frame's restore leg.
    kernel_->FinishAbortedCall(core, caller, pbd);
    record_phases();
    return sb::Aborted("server thread crashed mid-handler; call aborted");
  }
  mk::Message reply = server.handler(env);
  if (SB_FAULT_POINT(kFaultRevokeInflight)) {
    // Revocation racing a live call: this reply still returns; the EPTP
    // surgery defers to the drain and subsequent calls are refused.
    (void)RevokeBinding(proc, server_id);
  }
  const bool timed_out = core.cycles() - handler_start > config_.timeout_cycles;
  SB_TRACE_EVENT(TraceEventType::kHandlerExit, core.cycles(), core.id(), server.process->pid(),
                 timed_out ? 1 : 0);

  // A borrowed reply whose bytes already live inside this connection's slice
  // was built in place: the reply copy is skipped entirely.
  bool reply_in_place = false;
  if (!slice.host.empty() && reply.borrowed() && !reply.view.empty()) {
    const uint8_t* base = slice.host.data();
    const uint8_t* p = reply.view.data();
    reply_in_place = p >= base && p + reply.view.size() <= base + slice.host.size();
  }
  // Return-gate integrity: a borrowed reply that straddles the slice
  // boundary is a corrupt descriptor — the server scribbled the pointer or
  // the length. Detected structurally here, or injected by
  // gate.reply_corrupt; either way the reply is rejected after the EPT view
  // is restored, never delivered.
  bool reply_corrupt = SB_FAULT_POINT(kFaultReplyCorrupt);
  if (!reply_corrupt && !slice.host.empty() && reply.borrowed() && !reply.view.empty() &&
      !reply_in_place) {
    const uint8_t* base = slice.host.data();
    const uint8_t* p = reply.view.data();
    reply_corrupt = p < base + slice.host.size() && p + reply.view.size() > base;
  }
  if (reply_corrupt && !timed_out) {
    metrics_.gate_rejections->Add();
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "reply rejected at the return gate " << sb::kv("client", proc->pid())
                   << " " << sb::kv("server", server.process->pid());
    SB_RETURN_IF_ERROR(return_to_entry());
    record_phases();
    return sb::OutOfRange("corrupt reply rejected at the return gate");
  }
  const bool long_reply =
      reply_in_place || reply.size() > kernel_->profile().register_msg_capacity;
  if (long_reply && !timed_out) {
    if (reply.size() > config_.shared_buffer_bytes || slice.va == 0) {
      // Reject — but only after the return gate. Bailing out here would
      // leave the core in the server's EPT view with the client resumed.
      metrics_.gate_rejections->Add();
      metrics_.rejected_calls->Add();
      SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), proc->pid(),
                     server.process->pid());
      SB_RETURN_IF_ERROR(return_to_entry());
      record_phases();
      return sb::OutOfRange("reply exceeds shared buffer");
    }
    if (reply_in_place) {
      metrics_.inplace_replies->Add();
    } else {
      const uint64_t before = core.cycles();
      SB_RETURN_IF_ERROR(core.WriteVirt(slice.va, reply.payload()));
      pbd->copy += core.cycles() - before;
    }
  }

  // ---- Return gate ----
  SB_RETURN_IF_ERROR(return_to_entry());
  if (config_.calling_keys) {
    // The client verifies the echoed per-call key (illegal-return defence).
    core.AdvanceCycles(8);
    (void)client_key;
  }
  if (long_reply && !timed_out) {
    if (config_.legacy_two_copy || slice.host.empty()) {
      // Two-copy ablation: charged read-out, and the returned message
      // carries the bytes read from the buffer — the simulated dataflow
      // matches the modeled cost.
      const uint64_t before = core.cycles();
      std::vector<uint8_t> out(reply.size());
      SB_RETURN_IF_ERROR(core.ReadVirt(slice.va, out));
      pbd->copy += core.cycles() - before;
      reply.view = std::span<const uint8_t>();
      reply.data = std::move(out);
    } else if (!reply_in_place) {
      // One-copy: the reply bytes live in the slice after the server-side
      // write; hand the client a borrowed view instead of copying them out.
      const size_t n = reply.size();
      reply.data.clear();
      reply.view = std::span<const uint8_t>(slice.host.data(), n);
    }
    // reply_in_place: the view already points into the slice — zero copies.
  }
  if (timed_out) {
    metrics_.timeouts->Add();
    SB_TRACE_EVENT(TraceEventType::kTimeout, core.cycles(), core.id(),
                   server.process->pid());
    SB_LOG(kDebug) << "call timeout " << sb::kv("client", proc->pid())
                   << " " << sb::kv("server", server.process->pid());
    record_phases();
    return sb::TimeoutError("server handler exceeded the SkyBridge timeout");
  }
  metrics_.direct_calls->Add();
  SB_TRACE_EVENT(TraceEventType::kCallEnd, core.cycles(), core.id(), proc->pid(),
                 server.process->pid());
  record_phases();
  return reply;
}

sb::StatusOr<mk::Message> SkyBridge::CallWithForgedKey(mk::Thread* caller, ServerId server_id,
                                                       const mk::Message& msg,
                                                       uint64_t forged_key) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* binding = FindBinding(caller->process(), server_id);
  if (binding == nullptr) {
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("client not registered to server");
  }
  const uint64_t real_key = binding->server_key;
  binding->server_key = forged_key;  // The caller presents a wrong key.
  auto result = DirectServerCall(caller, server_id, msg);
  binding->server_key = real_key;
  return result;
}

sb::Status SkyBridge::RevokeBinding(mk::Process* client, ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* binding = FindBinding(client, server_id);
  if (binding == nullptr) {
    return sb::NotFound("client not registered to server");
  }
  if (!binding->revoked) {
    binding->revoked = true;
    ++route_generation_;  // Drop every thread's cached route.
    metrics_.bindings_revoked->Add();
    hw::Core& core = kernel_->machine().core(0);
    SB_TRACE_EVENT(TraceEventType::kBindingRevoked, core.cycles(), core.id(), client->pid(),
                   server_id);
    SB_LOG(kDebug) << "binding revoked " << sb::kv("client", client->pid())
                   << " " << sb::kv("server", server_id);
  }
  SweepRevoked(client);
  return sb::OkStatus();
}

void SkyBridge::FinishCall(Binding& binding) {
  if (binding.in_flight > 0) {
    --binding.in_flight;
  }
  ClientState* state = binding.lru_owner;
  if (state == nullptr) {
    return;
  }
  if (state->inflight > 0) {
    --state->inflight;
  }
  if (state->inflight == 0 && state->pending_revocations) {
    SweepRevoked(binding.client);
  }
}

void SkyBridge::SweepRevoked(mk::Process* client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return;
  }
  ClientState& state = it->second;
  if (state.inflight > 0) {
    // Never reshape the EPTP list under a live call: the last drain of this
    // client re-runs the sweep.
    state.pending_revocations = true;
    return;
  }
  state.pending_revocations = false;
  auto& ids = client->eptp_list_ids();
  bool removed = false;
  for (Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
    if (!b->revoked || !b->installed) {
      continue;
    }
    ids.erase(std::remove(ids.begin(), ids.end(), b->ept_id), ids.end());
    b->installed = false;
    b->eptp_slot = kNoEptpSlot;
    removed = true;
  }
  if (!removed) {
    return;
  }
  RefreshEptpSlots(client);
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    if (kernel_->current_process(i) == client) {
      (void)kernel_->ContextSwitchTo(kernel_->machine().core(i), client);
    }
  }
}

void SkyBridge::FaultEvict(hw::Core& core, Binding& binding) {
  if (!binding.installed) {
    return;
  }
  SB_TRACE_EVENT(TraceEventType::kEptEvict, core.cycles(), core.id(), binding.server,
                 binding.eptp_slot);
  auto& ids = binding.client->eptp_list_ids();
  ids.erase(std::remove(ids.begin(), ids.end(), binding.ept_id), ids.end());
  binding.installed = false;
  binding.eptp_slot = kNoEptpSlot;
  RefreshEptpSlots(binding.client);
  for (int i = 0; i < kernel_->machine().num_cores(); ++i) {
    if (kernel_->current_process(i) == binding.client) {
      (void)kernel_->ContextSwitchTo(kernel_->machine().core(i), binding.client);
    }
  }
}

sb::Status SkyBridge::CheckInvariants() const {
  for (const auto& entry : clients_) {
    mk::Process* client = entry.first;
    const ClientState& state = entry.second;
    size_t chain = 0;
    uint64_t inflight_sum = 0;
    const Binding* prev = nullptr;
    for (const Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
      if (++chain > bindings_.size()) {
        return sb::Internal("LRU cycle detected");
      }
      if (b->lru_prev != prev) {
        return sb::Internal("LRU prev link broken");
      }
      if (b->lru_owner != &state) {
        return sb::Internal("LRU owner mismatch");
      }
      if (b->client != client) {
        return sb::Internal("binding threaded onto the wrong client's LRU list");
      }
      inflight_sum += b->in_flight;
      prev = b;
    }
    if (state.lru_tail != prev) {
      return sb::Internal("LRU tail does not terminate the chain");
    }
    if (inflight_sum != state.inflight) {
      return sb::Internal("per-client in-flight sum out of sync");
    }
    const auto& ids = client->eptp_list_ids();
    if (ids.size() > config_.eptp_capacity) {
      return sb::Internal("EPTP list exceeds the configured capacity");
    }
    for (const Binding* b = state.lru_head; b != nullptr; b = b->lru_next) {
      if (b->installed) {
        if (b->eptp_slot == kNoEptpSlot || b->eptp_slot >= ids.size() ||
            ids[b->eptp_slot] != b->ept_id) {
          return sb::Internal("installed binding's cached slot disagrees with the EPTP list");
        }
      } else if (b->eptp_slot != kNoEptpSlot) {
        return sb::Internal("evicted binding still caches a slot");
      }
      if (b->revoked && b->installed && state.inflight == 0) {
        return sb::Internal("drained revoked binding still installed");
      }
    }
  }
  return sb::OkStatus();
}

uint64_t SkyBridge::InFlightCalls() const {
  uint64_t total = 0;
  for (const auto& entry : clients_) {
    total += entry.second.inflight;
  }
  return total;
}

sb::StatusOr<size_t> SkyBridge::InstalledBindings(mk::Process* client) const {
  size_t count = 0;
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    return count;
  }
  for (const Binding* b = it->second.lru_head; b != nullptr; b = b->lru_next) {
    if (b->installed) {
      ++count;
    }
  }
  return count;
}

}  // namespace skybridge
