// SkyBridge facade: wires the routing/gate/buffers modules together and
// drives the DirectServerCall pipeline. Registration (the kernel-mediated
// slow path) lives in registration.cc.

#include "src/skybridge/skybridge.h"

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/telemetry/span.h"
#include "src/base/telemetry/trace.h"
#include "src/mk/notification.h"
#include "src/vmm/rootkernel.h"

namespace skybridge {
namespace {

// Base backoff before a stale-slot slowpath re-arm; doubles per attempt.
constexpr uint64_t kStaleBackoffCycles = 32;

using sb::telemetry::TraceEventType;

}  // namespace

SkyBridge::SkyBridge(mk::Kernel& kernel, SkyBridgeConfig config)
    : kernel_(&kernel),
      config_(config),
      key_rng_(config.key_seed),
      trampoline_(BuildTrampoline()),
      routes_(kernel, config_),
      buffers_(kernel, config_),
      gate_(kernel, config_),
      scan_pool_(config.scan_pool_threads),
      rewrite_cache_(config.rewrite_cache_entries) {
  SB_CHECK(kernel.rootkernel() != nullptr)
      << "SkyBridge requires a kernel booted with the Rootkernel";
  SB_CHECK(config_.eptp_capacity >= 2 && config_.eptp_capacity <= hw::kEptpListCapacity);
  SB_CHECK(config_.eptp_working_set >= 4 &&
           config_.eptp_working_set <= hw::kEptpListCapacity)
      << "eptp_working_set must fit the hardware EPTP list";
  sb::telemetry::Registry& reg = kernel.machine().telemetry();
  metrics_.direct_calls = &reg.GetCounter("skybridge.ipc.direct_calls");
  metrics_.long_calls = &reg.GetCounter("skybridge.ipc.long_calls");
  metrics_.inplace_calls = &reg.GetCounter("skybridge.ipc.inplace_calls");
  metrics_.inplace_replies = &reg.GetCounter("skybridge.ipc.inplace_replies");
  metrics_.rejected_calls = &reg.GetCounter("skybridge.ipc.rejected_calls");
  metrics_.timeouts = &reg.GetCounter("skybridge.ipc.timeouts");
  metrics_.eptp_misses = &reg.GetCounter("skybridge.ipc.eptp_misses");
  metrics_.rewritten_vmfuncs = &reg.GetCounter("skybridge.rewrite.vmfuncs");
  metrics_.processes_rewritten = &reg.GetCounter("skybridge.rewrite.processes");
  metrics_.lookup_hits = &reg.GetCounter("skybridge.lookup.hits");
  metrics_.lookup_misses = &reg.GetCounter("skybridge.lookup.misses");
  metrics_.scan_pages = &reg.GetCounter("skybridge.rewrite.scan_pages");
  metrics_.scan_threads = &reg.GetGauge("skybridge.rewrite.scan_threads");
  metrics_.aborted_calls = &reg.GetCounter("skybridge.ipc.aborted_calls");
  metrics_.gate_rejections = &reg.GetCounter("skybridge.ipc.gate_rejections");
  metrics_.stale_slot_retries = &reg.GetCounter("skybridge.ipc.stale_slot_retries");
  metrics_.revoked_rejections = &reg.GetCounter("skybridge.ipc.revoked_rejections");
  metrics_.bindings_revoked = &reg.GetCounter("skybridge.bindings.revoked");
  metrics_.slot_faults = &reg.GetCounter("skybridge.eptp.slot_faults");
  metrics_.migration_installs = &reg.GetCounter("skybridge.eptp.migration_installs");
  metrics_.batched_calls = &reg.GetCounter("skybridge.ipc.batched_calls");
  metrics_.batch_flushes = &reg.GetCounter("skybridge.ipc.batch_flushes");
  metrics_.drain_rounds = &reg.GetCounter("skybridge.ipc.drain_rounds");
  metrics_.ring_depth = &reg.GetGauge("skybridge.batch.ring_depth");
  metrics_.exec_faults = &reg.GetCounter("skybridge.registration.exec_faults");
  metrics_.lazy_rewrites = &reg.GetCounter("skybridge.registration.lazy_rewrites");
  metrics_.cache_hits = &reg.GetCounter("skybridge.registration.cache_hits");
  metrics_.cache_misses = &reg.GetCounter("skybridge.registration.cache_misses");
  metrics_.snapshot_restores = &reg.GetCounter("skybridge.registration.snapshot_restores");
  metrics_.pages_rescanned = &reg.GetCounter("skybridge.registration.pages_rescanned");
  phase_exec_fault_ = &reg.GetHistogram("skybridge.phase.exec_fault");
  sb::telemetry::InstallTraceCrashDump();
  // Exec-violation exits (lazy registration's rewrite-on-first-execute) land
  // here via Rootkernel -> mk fault delivery.
  kernel.SetExecFaultHandler(
      [this](hw::Core& core, hw::Gpa gpa) { return HandleExecFault(core, gpa); });
  // Count the scheduler hook's eager EPTP re-installs on thread migration
  // (versus the lazy stale-slot fallback, counted by stale_slot_retries).
  kernel.SetEptpInstallHook(
      [this](hw::Core&, mk::Process*, mk::Kernel::EptpInstallReason reason) {
        if (reason == mk::Kernel::EptpInstallReason::kMigration) {
          metrics_.migration_installs->Add();
        }
      });
  // Dispatch installs go through the slot virtualizer (DESIGN.md section 15):
  // the kernel no longer rebuilds the EPTP list on context switch; the route
  // table makes the incoming process's working set resident instead.
  kernel.SetEptpInstaller(
      [this](hw::Core& core, mk::Process* process, mk::Kernel::EptpInstallReason reason) {
        return routes_.InstallProcessView(
            core, process, reason == mk::Kernel::EptpInstallReason::kMigration);
      });
  // Deferred revocation scrub: runs once per binding when its last in-flight
  // call drains. Zeroes the server-side calling-key slot and, for a binding
  // consolidated onto the server's shared EPT, restores the client's CR3
  // translation to identity so a stale VMFUNC can no longer reach the
  // server's page tables through it.
  routes_.SetRevokeScrub([this](Binding& binding) {
    if (binding.chain) {
      // Chain bindings share key slot 0 and carry no real key; zeroing it
      // would clobber a live client's key word.
      return;
    }
    ServerEntry& server = servers_[binding.server];
    const hw::GuestWalk table =
        server.process->address_space().WalkVa(mk::kCallingKeyTableVa);
    if (table.ok) {
      hw::HostPhysMem& mem = kernel_->machine().mem();
      mem.WriteU64(table.gpa + binding.key_slot * kKeySlotBytes, 0);
      mem.WriteU64(table.gpa + binding.key_slot * kKeySlotBytes + 8, 0);
    }
    if (config_.consolidate_bindings && binding.ept_id == server.shared_ept_id) {
      hw::Core& core = kernel_->machine().core(0);
      core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kAddCr3Remap), binding.ept_id,
                  binding.client->cr3(), binding.client->cr3());
    }
  });
  // One shared trampoline code frame for all processes.
  auto frame = kernel.guest_frames().Alloc(kernel.machine().mem());
  SB_CHECK(frame.ok());
  trampoline_gpa_ = *frame;
  kernel.machine().mem().Write(trampoline_gpa_, trampoline_.code);
  // The MPK variant (WRPKRU gates) shares one frame the same way; processes
  // map it at mk::kMpkTrampolineVa only when they touch an MPK binding.
  mpk_trampoline_ = BuildTrampoline(CrossingBackendKind::kMpk);
  auto mpk_frame = kernel.guest_frames().Alloc(kernel.machine().mem());
  SB_CHECK(mpk_frame.ok());
  mpk_trampoline_gpa_ = *mpk_frame;
  kernel.machine().mem().Write(mpk_trampoline_gpa_, mpk_trampoline_.code);
}

SkyBridge::~SkyBridge() {
  // The hooks capture `this`; never let them outlive the bridge.
  kernel_->SetEptpInstallHook(nullptr);
  kernel_->SetEptpInstaller(nullptr);
  kernel_->SetExecFaultHandler(nullptr);
}

const SkyBridgeStats& SkyBridge::stats() const {
  // One atomic read per field into a thread-local snapshot; see the header
  // for the (documented) cross-counter consistency rule.
  thread_local SkyBridgeStats snapshot;
  snapshot.direct_calls = metrics_.direct_calls->Value();
  snapshot.long_calls = metrics_.long_calls->Value();
  snapshot.inplace_calls = metrics_.inplace_calls->Value();
  snapshot.inplace_replies = metrics_.inplace_replies->Value();
  snapshot.rejected_calls = metrics_.rejected_calls->Value();
  snapshot.timeouts = metrics_.timeouts->Value();
  snapshot.eptp_misses = metrics_.eptp_misses->Value();
  snapshot.rewritten_vmfuncs = metrics_.rewritten_vmfuncs->Value();
  snapshot.processes_rewritten = metrics_.processes_rewritten->Value();
  snapshot.binding_lookup_hits = metrics_.lookup_hits->Value();
  snapshot.binding_lookup_misses = metrics_.lookup_misses->Value();
  snapshot.scan_pages = metrics_.scan_pages->Value();
  snapshot.scan_threads = metrics_.scan_threads->Value();
  snapshot.aborted_calls = metrics_.aborted_calls->Value();
  snapshot.gate_rejections = metrics_.gate_rejections->Value();
  snapshot.stale_slot_retries = metrics_.stale_slot_retries->Value();
  snapshot.revoked_rejections = metrics_.revoked_rejections->Value();
  snapshot.bindings_revoked = metrics_.bindings_revoked->Value();
  snapshot.slot_faults = metrics_.slot_faults->Value();
  snapshot.migration_installs = metrics_.migration_installs->Value();
  snapshot.batched_calls = metrics_.batched_calls->Value();
  snapshot.batch_flushes = metrics_.batch_flushes->Value();
  snapshot.batch_drain_rounds = metrics_.drain_rounds->Value();
  snapshot.exec_faults = metrics_.exec_faults->Value();
  snapshot.lazy_rewrites = metrics_.lazy_rewrites->Value();
  snapshot.cache_hits = metrics_.cache_hits->Value();
  snapshot.cache_misses = metrics_.cache_misses->Value();
  snapshot.snapshot_restores = metrics_.snapshot_restores->Value();
  snapshot.pages_rescanned = metrics_.pages_rescanned->Value();
  return snapshot;
}

sb::StatusOr<std::span<uint8_t>> SkyBridge::AcquireSendBuffer(mk::Thread* caller,
                                                              ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* perm = routes_.Lookup(caller, server_id);
  if (perm == nullptr) {
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("client not registered to server");
  }
  if (perm->revoked) {
    metrics_.revoked_rejections->Add();
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("binding revoked");
  }
  SB_ASSIGN_OR_RETURN(const SliceRef slice, buffers_.AcquireSlice(*perm, caller));
  if (slice.host.empty()) {
    return sb::FailedPrecondition("binding has no shared buffer");
  }
  return slice.host;
}

sb::StatusOr<mk::Message> SkyBridge::DirectServerCall(mk::Thread* caller, ServerId server_id,
                                                      const mk::Message& msg,
                                                      mk::CostBreakdown* bd) {
  return CallCommon(caller, server_id, &msg, 0, 0, /*in_place=*/false, bd);
}

sb::StatusOr<mk::Message> SkyBridge::DirectServerCallInPlace(mk::Thread* caller,
                                                             ServerId server_id, uint64_t tag,
                                                             uint64_t len,
                                                             mk::CostBreakdown* bd) {
  return CallCommon(caller, server_id, nullptr, tag, len, /*in_place=*/true, bd);
}

sb::StatusOr<mk::Message> SkyBridge::CallCommon(mk::Thread* caller, ServerId server_id,
                                                const mk::Message* msg_in, uint64_t inplace_tag,
                                                uint64_t inplace_len, bool in_place,
                                                mk::CostBreakdown* bd) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  CallContext ctx;
  ctx.caller = caller;
  ctx.server_id = server_id;
  ctx.server = &servers_[server_id];
  ctx.proc = caller->process();
  ctx.core = &kernel_->machine().core(caller->core_id());
  ctx.in_place = in_place;
  // Phase attribution: always measured, even when the caller did not ask for
  // a breakdown — the per-phase histograms are fed from the deltas. The
  // local breakdown records only; it charges no cycles.
  ctx.pbd = bd != nullptr ? bd : &ctx.local_bd;
  ctx.bd_before = *ctx.pbd;
  ctx.start_cycles = ctx.core->cycles();
  ctx.call_id = sb::telemetry::TakeCallId();
  SB_TRACE_EVENT(TraceEventType::kCallStart, ctx.core->cycles(), ctx.core->id(),
                 ctx.proc->pid(), ctx.server->process->pid());

  SB_RETURN_IF_ERROR(ResolveRoute(ctx));
  SB_RETURN_IF_ERROR(PrepareRequest(ctx, msg_in, inplace_tag, inplace_len, in_place));
  SB_RETURN_IF_ERROR(BindOrigin(ctx));
  // Lazy registration: pages this call is about to execute take their
  // rewrite-on-first-execute fault here, before the crossing is armed.
  SB_RETURN_IF_ERROR(EnsureCallExecutable(ctx));
  // In-flight brackets every exit path below (guard destructs at return).
  InFlightGuard guard;
  guard.Begin(&routes_, ctx.perm, ctx.route);
  // Slot pins release before the in-flight guard ends the call (declaration
  // order), so a drain-triggered sweep sees the slots unpinned.
  SlotPinGuard pins;
  ctx.pins = &pins;
  SB_RETURN_IF_ERROR(ArmGate(ctx));
  SB_RETURN_IF_ERROR(gate_.EnterServer(ctx));
  return ServeAndReturn(ctx);
}

sb::Status SkyBridge::ResolveRoute(CallContext& ctx) {
  hw::Core& core = *ctx.core;
  // Authorization comes from the caller's own registration. The lookup is
  // O(1): per-thread last-route cache, then the (client, server) hash index.
  ctx.perm = routes_.Lookup(ctx.caller, ctx.server_id);
  if (ctx.perm == nullptr) {
    // Unregistered caller: the trampoline has no binding EPT to switch to;
    // the attempt is rejected and the kernel notified.
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), ctx.proc->pid(),
                   ctx.server->process->pid());
    SB_LOG(kDebug) << "call rejected " << sb::kv("client", ctx.proc->pid())
                   << " " << sb::kv("server", ctx.server->process->pid())
                   << " " << sb::kv("reason", "unregistered");
    return sb::PermissionDenied("client not registered to server");
  }
  if (ctx.perm->revoked) {
    // Revoked bindings refuse new entries; in-flight calls already past this
    // gate drain normally (the sweep waits for them).
    metrics_.revoked_rejections->Add();
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), ctx.proc->pid(),
                   ctx.server->process->pid());
    SB_LOG(kDebug) << "call rejected " << sb::kv("client", ctx.proc->pid())
                   << " " << sb::kv("server", ctx.server->process->pid())
                   << " " << sb::kv("reason", "revoked");
    return sb::PermissionDenied("binding revoked");
  }
  // The crossing backend is a property of the server's registration; every
  // stage past this point dispatches through it.
  ctx.backend = &gate_.backend(ctx.server->backend);
  return sb::OkStatus();
}

sb::Status SkyBridge::PrepareRequest(CallContext& ctx, const mk::Message* msg_in,
                                     uint64_t inplace_tag, uint64_t inplace_len,
                                     bool in_place) {
  // The caller's per-connection slice. Authorization (and the buffer) always
  // come from the caller's own binding, even when a nested call routes the
  // VMFUNC through a chain binding. Slice ownership comes from the binding's
  // free-list allocator: exhaustion (more live connections than slices) is an
  // explicit error, never a silently shared slice.
  auto slice_or = buffers_.AcquireSlice(*ctx.perm, ctx.caller);
  if (slice_or.ok()) {
    ctx.slice = *slice_or;
  } else if (slice_or.status().code() == sb::ErrorCode::kResourceExhausted) {
    metrics_.rejected_calls->Add();
    return slice_or.status();
  }
  // Other acquisition failures (bufferless binding) leave the slice empty:
  // register-size messages never touch it.
  if (in_place) {
    if (ctx.slice.host.empty()) {
      return sb::FailedPrecondition("binding has no shared buffer");
    }
    if (inplace_len > config_.shared_buffer_bytes) {
      metrics_.rejected_calls->Add();
      return sb::OutOfRange("message exceeds shared buffer");
    }
    // The request is a borrowed view of bytes the client already wrote into
    // its slice — the request copy is skipped.
    ctx.inplace_msg = mk::Message::Borrowed(
        inplace_tag, std::span<const uint8_t>(ctx.slice.host.data(), inplace_len));
    ctx.request = &ctx.inplace_msg;
  } else {
    ctx.request = msg_in;
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::BindOrigin(CallContext& ctx) {
  hw::Core& core = *ctx.core;
  // Determine the live translation origin. A nested call (the caller is
  // itself a server currently entered via SkyBridge) keeps the original
  // client's CR3 live, so the EPT must map *that* CR3 to the target.
  ctx.origin = kernel_->current_process(core.id());
  if (ctx.origin != ctx.proc) {
    auto identity = kernel_->CurrentIdentity(core);
    if (identity.ok() && *identity == ctx.proc->pid()) {
      ctx.nested = true;  // Entered via a prior VMFUNC; origin's CR3 is live.
    } else {
      // Plain scheduling mismatch: dispatch the caller.
      SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(core, ctx.proc, ctx.pbd));
      ctx.origin = ctx.proc;
    }
  }
  ctx.route = ctx.perm;
  if (ctx.nested) {
    SB_ASSIGN_OR_RETURN(ctx.route, GetOrCreateChainBinding(core, ctx.origin, ctx.server_id));
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::ArmGate(CallContext& ctx) {
  hw::Core& core = *ctx.core;
  // The EPTP-slot machinery below only applies to view-switch backends
  // (EPTP, MPK). The kernel-fastpath backend has no slots to arm: its legs
  // trap into the kernel and switch CR3 directly.
  const bool view_slots = ctx.backend->caps().uses_view_slots;
  if (view_slots) {
    // The EPT active at entry: we must return to it (the caller's own view
    // for a top-level call, the enclosing binding's EPT for a nested one).
    // Freed slots are replaced in place (kEptpListReplace) and never
    // reshuffle their neighbours, so the return slot is simply the slot we
    // entered on — always.
    const size_t entry_index = core.vmcs().active_index;
    ctx.entry_ept = routes_.EptIdAtSlot(core.id(), static_cast<uint32_t>(entry_index));
    ctx.return_index = entry_index;

    if (!ctx.route->installed) {
      // LRU-evicted earlier (or a fresh chain binding): install it.
      metrics_.eptp_misses->Add();
      SB_TRACE_EVENT(TraceEventType::kEptpMiss, core.cycles(), core.id(),
                     ctx.server->process->pid());
      SB_LOG(kDebug) << "eptp miss " << sb::kv("client", ctx.origin->pid())
                     << " " << sb::kv("server", ctx.server->process->pid());
      kernel_->SyscallEnter(core, ctx.pbd);
      SB_RETURN_IF_ERROR(routes_.Install(core, *ctx.route, ctx.entry_ept));
      kernel_->SyscallExit(core, ctx.pbd);
      SB_TRACE_EVENT(TraceEventType::kEptpReinstall, core.cycles(), core.id(),
                     ctx.server->process->pid(), 0);
    }
    routes_.Touch(*ctx.route);

    // Slot-fault slow path (DESIGN.md section 15): the binding is authorized
    // and installed, but its EPT is not resident in this core's bounded slot
    // working set. Evict the LRU victim, replace the freed slot in place, and
    // retry — hot bindings stay resident and never take this path.
    if (routes_.ResidentSlot(core.id(), ctx.route->ept_id) == kNoEptpSlot) {
      metrics_.slot_faults->Add();
      const uint64_t fault_start = core.cycles();
      kernel_->SyscallEnter(core, ctx.pbd);
      const auto slot_or =
          routes_.EnsureResident(core, ctx.route->ept_id, /*faultable=*/true);
      kernel_->SyscallExit(core, ctx.pbd);
      gate_.RecordSlotFault(core.cycles() - fault_start);
      if (!slot_or.ok()) {
        metrics_.rejected_calls->Add();
        return slot_or.status();
      }
      SB_TRACE_EVENT(TraceEventType::kSlotFault, core.cycles(), core.id(), ctx.route->ept_id,
                     *slot_or);
    } else {
      // Hit: refresh slot recency so the hot set survives faults elsewhere.
      (void)routes_.EnsureResident(core, ctx.route->ept_id, /*faultable=*/false);
    }
  }

  // ---- Client-side trampoline (view-switch backends only) ----
  if (ctx.backend->caps().uses_trampoline) {
    gate_.ChargeTrampolineLeg(core, ctx.pbd, ctx.backend->trampoline_va());
  }
  ctx.long_msg = ctx.in_place || ctx.request->size() > kernel_->profile().register_msg_capacity;
  if (ctx.long_msg) {
    metrics_.long_calls->Add();
    if (ctx.request->size() > config_.shared_buffer_bytes || ctx.slice.va == 0) {
      metrics_.rejected_calls->Add();
      return sb::OutOfRange("message exceeds shared buffer");
    }
    if (ctx.in_place) {
      // The client already built the payload in its slice: no request copy.
      metrics_.inplace_calls->Add();
    } else {
      const uint64_t before = core.cycles();
      SB_RETURN_IF_ERROR(core.WriteVirt(ctx.slice.va, ctx.request->payload()));
      ctx.pbd->copy += core.cycles() - before;
    }
  }
  // The client's per-call key; the server must echo it on return.
  ctx.client_key = Gate::PerCallKey(*ctx.caller, core.cycles());

  if (!view_slots) {
    return sb::OkStatus();
  }
  // The binding's residency is centrally maintained; no EPTP scan on the hit
  // path. A concurrent registration can still LRU-evict the binding between
  // lookup and this point (the pre_vmfunc fault injects exactly that):
  // detect the stale slot and re-arm via the slowpath with bounded
  // exponential backoff instead of dying on the old SB_CHECK.
  for (uint64_t attempt = 0;; ++attempt) {
    if (SB_FAULT_POINT(kFaultPreVmfunc)) {
      routes_.FaultEvict(core, *ctx.route);
    }
    if (ctx.route->installed) {
      const uint32_t slot = routes_.ResidentSlot(core.id(), ctx.route->ept_id);
      if (slot != kNoEptpSlot) {
        ctx.route_slot = slot;
        break;
      }
    }
    if (attempt >= config_.max_stale_slot_retries) {
      metrics_.rejected_calls->Add();
      SB_LOG(kDebug) << "stale-slot retries exhausted " << sb::kv("client", ctx.origin->pid())
                     << " " << sb::kv("server", ctx.server->process->pid());
      // The entry slot never moved (in-place replacement): restore it.
      core.vmcs().active_index = ctx.return_index;
      return sb::Unavailable("EPTP slot evicted repeatedly before VMFUNC");
    }
    metrics_.stale_slot_retries->Add();
    SB_TRACE_EVENT(TraceEventType::kStaleSlotRetry, core.cycles(), core.id(),
                   ctx.server->process->pid(), attempt);
    core.AdvanceCycles(kStaleBackoffCycles << attempt);
    kernel_->SyscallEnter(core, ctx.pbd);
    sb::Status rearm = routes_.Install(core, *ctx.route, ctx.entry_ept);
    if (rearm.ok()) {
      rearm = routes_.EnsureResident(core, ctx.route->ept_id, /*faultable=*/false).status();
    }
    kernel_->SyscallExit(core, ctx.pbd);
    SB_RETURN_IF_ERROR(rearm);
  }
  // Pin both gate slots for the life of the call: slot faults taken by other
  // calls (including nested ones on this core) may evict anything else.
  if (ctx.pins != nullptr) {
    ctx.pins->Pin(&routes_, core.id(), static_cast<uint32_t>(ctx.return_index),
                  ctx.route_slot);
  }
  return sb::OkStatus();
}

sb::StatusOr<mk::Message> SkyBridge::ServeAndReturn(CallContext& ctx) {
  hw::Core& core = *ctx.core;
  ServerEntry& server = *ctx.server;
  const mk::Message& msg = *ctx.request;

  // ---- Server side (server address space, same core, no kernel) ----
  // Calling-key check against the server's table (Section 4.4).
  if (!gate_.CheckCallingKey(ctx)) {
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), ctx.proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "call rejected " << sb::kv("client", ctx.proc->pid())
                   << " " << sb::kv("server", server.process->pid())
                   << " " << sb::kv("reason", "calling_key");
    SB_RETURN_IF_ERROR(gate_.ReturnToEntry(ctx));
    return sb::PermissionDenied("calling key rejected");
  }

  // Install the per-connection server stack.
  const hw::Gva stack_va = mk::kServerStacksVa + ctx.server_id * 256 * kServerStackBytes +
                           ctx.perm->key_slot * kServerStackBytes;
  (void)core.TouchData(stack_va + kServerStackBytes - 64, 64, true);

  ctx.handler_start = core.cycles();
  SB_TRACE_EVENT(TraceEventType::kHandlerEnter, core.cycles(), core.id(),
                 server.process->pid());
  // Handler request view: in the default modes a long request is served as a
  // borrowed view over the slice — the handler reads the shared buffer, not
  // a copied-out vector. The legacy two-copy ablation keeps the owned copy.
  mk::Message borrowed_req;
  const mk::Message* handler_req = &msg;
  if (ctx.long_msg && !config_.legacy_two_copy && !ctx.slice.host.empty()) {
    borrowed_req = mk::Message::Borrowed(
        msg.tag, std::span<const uint8_t>(ctx.slice.host.data(), msg.size()));
    handler_req = &borrowed_req;
  }
  mk::CallEnv env{*kernel_, core, *server.process, *handler_req};
  if (!config_.legacy_two_copy && !ctx.slice.host.empty()) {
    // Offer the slice for in-place reply construction (zero-copy replies).
    env.reply_buffer = ctx.slice.host;
    env.reply_buffer_va = ctx.slice.va;
  }
  if (SB_FAULT_POINT(kFaultHandlerCrash)) {
    return gate_.AbortServerCrash(ctx);
  }
  mk::Message reply = server.handler(env);
  if (SB_FAULT_POINT(kFaultRevokeInflight)) {
    // Revocation racing a live call: this reply still returns; the EPTP
    // surgery defers to the drain and subsequent calls are refused.
    (void)RevokeBinding(ctx.proc, ctx.server_id);
  }
  ctx.timed_out = core.cycles() - ctx.handler_start > config_.timeout_cycles;
  SB_TRACE_EVENT(TraceEventType::kHandlerExit, core.cycles(), core.id(), server.process->pid(),
                 ctx.timed_out ? 1 : 0);

  const Gate::ReplyVerdict verdict = gate_.ClassifyReply(ctx, reply);
  if (verdict.corrupt && !ctx.timed_out) {
    metrics_.gate_rejections->Add();
    metrics_.rejected_calls->Add();
    SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), ctx.proc->pid(),
                   server.process->pid());
    SB_LOG(kDebug) << "reply rejected at the return gate " << sb::kv("client", ctx.proc->pid())
                   << " " << sb::kv("server", server.process->pid());
    SB_RETURN_IF_ERROR(gate_.ReturnToEntry(ctx));
    gate_.RecordPhases(ctx);
    return sb::OutOfRange("corrupt reply rejected at the return gate");
  }
  const bool long_reply =
      verdict.in_place || reply.size() > kernel_->profile().register_msg_capacity;
  if (long_reply && !ctx.timed_out) {
    if (reply.size() > config_.shared_buffer_bytes || ctx.slice.va == 0) {
      // Reject — but only after the return gate. Bailing out here would
      // leave the core in the server's EPT view with the client resumed.
      metrics_.gate_rejections->Add();
      metrics_.rejected_calls->Add();
      SB_TRACE_EVENT(TraceEventType::kRejected, core.cycles(), core.id(), ctx.proc->pid(),
                     server.process->pid());
      SB_RETURN_IF_ERROR(gate_.ReturnToEntry(ctx));
      gate_.RecordPhases(ctx);
      return sb::OutOfRange("reply exceeds shared buffer");
    }
    if (verdict.in_place) {
      metrics_.inplace_replies->Add();
    } else {
      const uint64_t before = core.cycles();
      SB_RETURN_IF_ERROR(core.WriteVirt(ctx.slice.va, reply.payload()));
      ctx.pbd->copy += core.cycles() - before;
    }
  }

  // ---- Return gate ----
  SB_RETURN_IF_ERROR(gate_.ReturnToEntry(ctx));
  gate_.VerifyReturnKey(ctx);
  if (long_reply && !ctx.timed_out) {
    if (config_.legacy_two_copy || ctx.slice.host.empty()) {
      // Two-copy ablation: charged read-out, and the returned message
      // carries the bytes read from the buffer — the simulated dataflow
      // matches the modeled cost.
      const uint64_t before = core.cycles();
      std::vector<uint8_t> out(reply.size());
      SB_RETURN_IF_ERROR(core.ReadVirt(ctx.slice.va, out));
      ctx.pbd->copy += core.cycles() - before;
      reply.view = std::span<const uint8_t>();
      reply.data = std::move(out);
    } else if (!verdict.in_place) {
      // One-copy: the reply bytes live in the slice after the server-side
      // write; hand the client a borrowed view instead of copying them out.
      const size_t n = reply.size();
      reply.data.clear();
      reply.view = std::span<const uint8_t>(ctx.slice.host.data(), n);
    }
    // verdict.in_place: the view already points into the slice — zero copies.
  }
  if (ctx.timed_out) {
    metrics_.timeouts->Add();
    SB_TRACE_EVENT(TraceEventType::kTimeout, core.cycles(), core.id(),
                   server.process->pid());
    SB_LOG(kDebug) << "call timeout " << sb::kv("client", ctx.proc->pid())
                   << " " << sb::kv("server", server.process->pid());
    gate_.RecordPhases(ctx);
    return sb::TimeoutError("server handler exceeded the SkyBridge timeout");
  }
  metrics_.direct_calls->Add();
  SB_TRACE_EVENT(TraceEventType::kCallEnd, core.cycles(), core.id(), ctx.proc->pid(),
                 server.process->pid());
  gate_.RecordPhases(ctx);
  return reply;
}

// ---- Batched + asynchronous IPC (DESIGN.md section 13) ----

sb::StatusOr<SkyBridge::BatchConn*> SkyBridge::GetBatchConn(mk::Thread* caller,
                                                            ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* perm = routes_.Lookup(caller, server_id);
  if (perm == nullptr) {
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("client not registered to server");
  }
  if (perm->revoked) {
    metrics_.revoked_rejections->Add();
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("binding revoked");
  }
  if (BatchConn* conn = FindBatchConn(perm, caller->tid())) {
    return conn;
  }
  // First use of the batch API on this connection (slow path): acquire the
  // connection's slice and carve the ring from it.
  SB_ASSIGN_OR_RETURN(const SliceRef slice, buffers_.AcquireSlice(*perm, caller));
  SB_ASSIGN_OR_RETURN(const BatchRingView ring, buffers_.CarveRing(*perm, caller));
  std::lock_guard<std::mutex> lock(batch_mu_);
  BatchConn& conn = batch_conns_[{perm, caller->tid()}];
  if (conn.binding == nullptr) {
    conn.binding = perm;
    conn.slice = slice;
    conn.ring = ring;
    conn.busy.assign(ring.entries, 0);
    conn.notify = kernel_->CreateNotification();
  }
  return &conn;
}

SkyBridge::BatchConn* SkyBridge::FindBatchConn(const Binding* perm, int tid) {
  std::lock_guard<std::mutex> lock(batch_mu_);
  auto it = batch_conns_.find({perm, tid});
  return it != batch_conns_.end() ? &it->second : nullptr;
}

sb::StatusOr<uint64_t> SkyBridge::SubmitCall(mk::Thread* caller, ServerId server_id,
                                             const mk::Message& msg) {
  SB_ASSIGN_OR_RETURN(BatchConn * conn, GetBatchConn(caller, server_id));
  const BatchRingView& ring = conn->ring;
  if (msg.size() > ring.payload_cap) {
    metrics_.rejected_calls->Add();
    return sb::OutOfRange("message exceeds the ring's per-entry capacity");
  }
  const uint32_t slot = ring.Slot(conn->sq_tail);
  if (conn->busy[slot] != 0) {
    return sb::ResourceExhausted("batch ring full");
  }
  hw::Core& core = kernel_->machine().core(caller->core_id());
  const uint64_t token = conn->sq_tail++;
  const uint64_t call_id = sb::telemetry::TakeCallId();
  // Client-side submit: payload into the entry's span, then the descriptor
  // line, then the published tail. No crossing, no syscall.
  if (msg.size() > 0) {
    SB_RETURN_IF_ERROR(core.WriteVirt(ring.PayloadVa(token), msg.payload()));
  }
  const uint64_t desc = ring.DescOff(token);
  (void)core.TouchData(ring.va + desc, BatchRingView::kDescBytes, true);
  ring.StoreU64(desc + BatchRingView::kDescToken, token);
  ring.StoreU64(desc + BatchRingView::kDescTag, msg.tag);
  ring.StoreU64(desc + BatchRingView::kDescReplyTag, 0);
  ring.StoreU32(desc + BatchRingView::kDescReqLen, static_cast<uint32_t>(msg.size()));
  ring.StoreU32(desc + BatchRingView::kDescReplyLen, 0);
  ring.StoreU32(desc + BatchRingView::kDescStatus, 0);
  ring.StoreU64(desc + BatchRingView::kDescCallId, call_id);
  ring.StoreU64(BatchRingView::kSqTailOff, conn->sq_tail);
  conn->busy[slot] = 1;
  ++conn->binding->queued_submissions;
  metrics_.batched_calls->Add();
  SB_TRACE_EVENT(TraceEventType::kBatchEnqueue, core.cycles(), core.id(), call_id, token);
  return token;
}

sb::StatusOr<mk::Message> SkyBridge::PollCompletion(mk::Thread* caller, ServerId server_id,
                                                    uint64_t token) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* perm = routes_.Lookup(caller, server_id);
  if (perm == nullptr) {
    return sb::PermissionDenied("client not registered to server");
  }
  BatchConn* conn = FindBatchConn(perm, caller->tid());
  if (conn == nullptr) {
    return sb::NotFound("no batch connection for this caller");
  }
  const BatchRingView& ring = conn->ring;
  if (token >= conn->sq_tail) {
    return sb::InvalidArgument("token was never submitted");
  }
  const uint64_t desc = ring.DescOff(token);
  hw::Core& core = kernel_->machine().core(caller->core_id());
  (void)core.TouchData(ring.va + desc, BatchRingView::kDescBytes, false);
  if (ring.LoadU64(desc + BatchRingView::kDescToken) != token) {
    return sb::InvalidArgument("completion already consumed (slot recycled)");
  }
  const uint32_t status_word = ring.LoadU32(desc + BatchRingView::kDescStatus);
  if (status_word == 0) {
    return sb::Unavailable("completion pending; flush the batch");
  }
  const uint64_t reply_tag = ring.LoadU64(desc + BatchRingView::kDescReplyTag);
  const uint32_t reply_len = ring.LoadU32(desc + BatchRingView::kDescReplyLen);
  SB_TRACE_EVENT(TraceEventType::kBatchPoll, core.cycles(), core.id(),
                 ring.LoadU64(desc + BatchRingView::kDescCallId), token);
  // Reap: clobber the descriptor's token (a second poll of the same token
  // is an explicit error, not a stale replay) and free the slot.
  ring.StoreU64(desc + BatchRingView::kDescToken, ~0ULL);
  conn->busy[ring.Slot(token)] = 0;
  const auto code = static_cast<sb::ErrorCode>(status_word - 1);
  if (code != sb::ErrorCode::kOk) {
    return sb::Status(code, "batched call failed");
  }
  // Like the in-place API, the reply is a borrowed view of the entry's
  // payload span — valid until the slot is resubmitted.
  return mk::Message::Borrowed(
      reply_tag, std::span<const uint8_t>(ring.Payload(token).data(), reply_len));
}

void SkyBridge::FailPendingClientSide(BatchConn& conn, sb::ErrorCode code) {
  const BatchRingView& ring = conn.ring;
  const uint32_t word = 1u + static_cast<uint32_t>(code);
  uint64_t head = ring.LoadU64(BatchRingView::kSqHeadOff);
  while (head != conn.sq_tail) {
    const uint64_t desc = ring.DescOff(head);
    ring.StoreU64(desc + BatchRingView::kDescReplyTag, 0);
    ring.StoreU32(desc + BatchRingView::kDescReplyLen, 0);
    ring.StoreU32(desc + BatchRingView::kDescStatus, word);
    ring.StoreU64(BatchRingView::kSqHeadOff, ++head);
    --conn.binding->queued_submissions;
  }
}

sb::Status SkyBridge::FlushBatch(mk::Thread* caller, ServerId server_id,
                                 mk::CostBreakdown* bd) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* perm = routes_.Lookup(caller, server_id);
  if (perm == nullptr) {
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("client not registered to server");
  }
  BatchConn* conn = FindBatchConn(perm, caller->tid());
  if (conn == nullptr) {
    return sb::OkStatus();  // Nothing was ever submitted.
  }
  const BatchRingView& ring = conn->ring;
  const uint64_t pending = conn->sq_tail - ring.LoadU64(BatchRingView::kSqHeadOff);
  if (pending == 0) {
    return sb::OkStatus();
  }
  hw::Core& core = kernel_->machine().core(caller->core_id());
  if (perm->revoked) {
    // Revoked binding: no crossing. The pending entries complete client-side
    // with PermissionDenied so pollers see a per-entry verdict, not a hang.
    metrics_.revoked_rejections->Add();
    metrics_.rejected_calls->Add();
    FailPendingClientSide(*conn, sb::ErrorCode::kPermissionDenied);
    if (conn->wait_armed) {
      conn->wait_armed = false;
      (void)conn->notify->Signal(core, 1);
    }
    return sb::OkStatus();
  }
  metrics_.ring_depth->SetMax(pending);

  CallContext ctx;
  ctx.caller = caller;
  ctx.server_id = server_id;
  ctx.server = &servers_[server_id];
  ctx.proc = caller->process();
  ctx.core = &core;
  ctx.pbd = bd != nullptr ? bd : &ctx.local_bd;
  ctx.bd_before = *ctx.pbd;
  ctx.start_cycles = core.cycles();
  ctx.call_id = sb::telemetry::TakeCallId();
  SB_TRACE_EVENT(TraceEventType::kCallStart, core.cycles(), core.id(), ctx.proc->pid(),
                 ctx.server->process->pid());
  SB_TRACE_EVENT(TraceEventType::kBatchFlushStart, core.cycles(), core.id(), ctx.call_id,
                 pending);
  SB_RETURN_IF_ERROR(ResolveRoute(ctx));
  ctx.slice = conn->slice;
  // The flush itself carries no payload — the requests are already in the
  // ring. An empty request keeps ArmGate on the register-size path.
  const mk::Message flush_msg;
  ctx.request = &flush_msg;
  SB_RETURN_IF_ERROR(BindOrigin(ctx));
  // Lazy registration: the drain executes the client's submit site and the
  // server's handler entry — fault their pages in before crossing.
  SB_RETURN_IF_ERROR(EnsureCallExecutable(ctx));
  InFlightGuard guard;
  guard.Begin(&routes_, ctx.perm, ctx.route);
  SlotPinGuard pins;
  ctx.pins = &pins;
  SB_RETURN_IF_ERROR(ArmGate(ctx));
  SB_RETURN_IF_ERROR(gate_.EnterServer(ctx));

  // ---- Server side: the batch-dispatch leg ----
  if (!gate_.CheckCallingKey(ctx)) {
    metrics_.rejected_calls->Add();
    SB_RETURN_IF_ERROR(gate_.ReturnToEntry(ctx));
    return sb::PermissionDenied("calling key rejected");
  }
  const Gate::DrainOutcome outcome = gate_.DrainBatch(ctx, ring, batch_refill_);
  metrics_.batch_flushes->Add();
  metrics_.drain_rounds->Add(outcome.rounds);
  perm->queued_submissions -= outcome.completed;
  if (SB_FAULT_POINT(kFaultRevokeInflight)) {
    // Revocation racing a live flush: this crossing's completions stand;
    // subsequent submits and flushes are refused.
    (void)RevokeBinding(ctx.proc, ctx.server_id);
  }
  if (outcome.crashed) {
    // Handler died mid-drain. Entries it completed (including the Aborted
    // one) are posted; untouched entries stay pending for the next flush.
    SB_TRACE_EVENT(TraceEventType::kBatchFlushEnd, core.cycles(), core.id(), ctx.call_id,
                   outcome.completed);
    const sb::Status abort = gate_.AbortServerCrash(ctx);
    if (conn->wait_armed && outcome.completed > 0) {
      conn->wait_armed = false;
      (void)conn->notify->Signal(core, 1);
    }
    return abort;
  }
  SB_RETURN_IF_ERROR(gate_.ReturnToEntry(ctx));
  gate_.VerifyReturnKey(ctx);
  gate_.RecordPhases(ctx);
  SB_TRACE_EVENT(TraceEventType::kBatchFlushEnd, core.cycles(), core.id(), ctx.call_id,
                 outcome.completed);
  SB_TRACE_EVENT(TraceEventType::kCallEnd, core.cycles(), core.id(), ctx.proc->pid(),
                 ctx.server->process->pid());
  if (conn->wait_armed && outcome.completed > 0) {
    // Completion notification: one Signal per crossing, only when a waiter
    // parked — the poll-only fast path never pays the syscall.
    conn->wait_armed = false;
    (void)conn->notify->Signal(core, 1);
  }
  return sb::OkStatus();
}

sb::StatusOr<mk::Message> SkyBridge::WaitCompletion(mk::Thread* caller, ServerId server_id,
                                                    uint64_t token, mk::CostBreakdown* bd) {
  // Progress argument: every iteration either resolves the poll, flushes
  // (posting >= 1 completion, or Aborted with the crashed entry posted), or
  // parks on the notification; the bound only guards against a pathological
  // fault schedule crashing every crossing.
  for (int attempt = 0; attempt < 1024; ++attempt) {
    auto reply = PollCompletion(caller, server_id, token);
    if (reply.ok() || reply.status().code() != sb::ErrorCode::kUnavailable) {
      return reply;
    }
    const sb::Status flushed = FlushBatch(caller, server_id, bd);
    if (flushed.code() == sb::ErrorCode::kAborted) {
      continue;  // Crash mid-drain: re-poll; our entry may need another flush.
    }
    SB_RETURN_IF_ERROR(flushed);
    auto after = PollCompletion(caller, server_id, token);
    if (after.ok() || after.status().code() != sb::ErrorCode::kUnavailable) {
      return after;
    }
    // Still pending with nothing left to flush here: park on the kernel
    // notification path until a concurrent flush posts completions.
    Binding* perm = routes_.Lookup(caller, server_id);
    BatchConn* conn = perm != nullptr ? FindBatchConn(perm, caller->tid()) : nullptr;
    if (conn == nullptr) {
      return sb::Internal("batch connection vanished under a waiter");
    }
    conn->wait_armed = true;
    hw::Core& core = kernel_->machine().core(caller->core_id());
    auto badges = conn->notify->Wait(core);
    if (!badges.ok()) {
      conn->wait_armed = false;
      return sb::Unavailable("completion pending and no flush in flight");
    }
  }
  return sb::Internal("WaitCompletion did not converge");
}

sb::StatusOr<std::vector<SkyBridge::BatchEntryResult>> SkyBridge::CallBatch(
    mk::Thread* caller, ServerId server_id, std::span<const mk::Message> msgs,
    mk::CostBreakdown* bd) {
  std::vector<BatchEntryResult> out(msgs.size());
  size_t i = 0;
  while (i < msgs.size()) {
    // Submit until the ring fills (or input runs out), then flush the chunk.
    std::vector<std::pair<size_t, uint64_t>> chunk;  // msg index -> token
    while (i < msgs.size()) {
      auto token = SubmitCall(caller, server_id, msgs[i]);
      if (!token.ok()) {
        if (token.status().code() == sb::ErrorCode::kResourceExhausted && !chunk.empty()) {
          break;  // Ring full: flush what we have, resubmit this one after.
        }
        out[i].status = token.status();  // Per-entry submit failure.
        ++i;
        continue;
      }
      chunk.emplace_back(i, *token);
      ++i;
    }
    if (chunk.empty()) {
      continue;
    }
    sb::Status flushed = FlushBatch(caller, server_id, bd);
    for (auto& [idx, token] : chunk) {
      for (int attempt = 0;; ++attempt) {
        auto reply = PollCompletion(caller, server_id, token);
        if (reply.ok()) {
          // Own the reply: the next chunk recycles the slot it borrows from.
          out[idx].status = sb::OkStatus();
          out[idx].reply = reply->ToOwned();
          break;
        }
        if (reply.status().code() != sb::ErrorCode::kUnavailable) {
          out[idx].status = reply.status();
          break;
        }
        // Untouched by a crashed crossing: flush again.
        flushed = FlushBatch(caller, server_id, bd);
        if (!flushed.ok() && flushed.code() != sb::ErrorCode::kAborted) {
          out[idx].status = flushed;
          break;
        }
        if (attempt >= 64) {
          out[idx].status = sb::Internal("batched entry never completed");
          break;
        }
      }
    }
  }
  return out;
}

sb::StatusOr<mk::Message> SkyBridge::CallWithForgedKey(mk::Thread* caller, ServerId server_id,
                                                       const mk::Message& msg,
                                                       uint64_t forged_key) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  Binding* binding = routes_.Find(caller->process(), server_id);
  if (binding == nullptr) {
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("client not registered to server");
  }
  const uint64_t real_key = binding->server_key;
  binding->server_key = forged_key;  // The caller presents a wrong key.
  auto result = DirectServerCall(caller, server_id, msg);
  binding->server_key = real_key;
  return result;
}

sb::StatusOr<uint64_t> SkyBridge::ProbeCrossDomainRead(mk::Thread* caller, ServerId server_id,
                                                       hw::Gva va) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  ServerEntry& server = servers_[server_id];
  hw::Core& core = kernel_->machine().core(caller->core_id());
  const CrossingBackend& backend = gate_.backend(server.backend);
  if (backend.caps().isolates_memory) {
    // EPTP: a forged VMFUNC can only name list slots the Rootkernel
    // populated, and none of them maps the server's pages for this attacker
    // — the hypervisor's view switch is the reference monitor. Syscall: the
    // kernel validates the capability on every crossing. Either way the
    // probe dies before the dereference.
    metrics_.rejected_calls->Add();
    return sb::PermissionDenied("cross-domain read blocked by the crossing backend");
  }
  // MPK: WRPKRU is unprivileged and the server's pages live in the shared
  // address space — the attacker forges PKRU (all keys readable) and
  // dereferences through the server's mapping. No trampoline, no calling
  // key, no kernel. This is the backend's documented weaker isolation
  // envelope (DESIGN.md section 16), pinned by the security tests.
  const uint32_t saved_pkru = core.pkru();
  core.Wrpkru(0);  // Grant every protection key.
  const hw::GuestWalk walk = server.process->address_space().WalkVa(va);
  sb::StatusOr<uint64_t> stolen =
      walk.ok ? sb::StatusOr<uint64_t>(kernel_->machine().mem().ReadU64(walk.gpa))
              : sb::StatusOr<uint64_t>(sb::InvalidArgument("server va unmapped"));
  core.Wrpkru(saved_pkru);
  kernel_->machine().telemetry().GetCounter("skybridge.crossing.mpk.cross_domain_probes").Add();
  return stolen;
}

sb::Status SkyBridge::RevokeBinding(mk::Process* client, ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  return routes_.Revoke(client, server_id);
}

sb::Status SkyBridge::RevokeServer(ServerId server_id) {
  if (server_id >= servers_.size()) {
    return sb::NotFound("no such server");
  }
  // Revoke every live client binding; each drains independently. Under
  // consolidation they all share one EPT, and the last sibling to drain
  // drops its residency on every core (see RouteTable::SweepRevoked).
  for (mk::Process* client : routes_.ClientsOfServer(server_id)) {
    SB_RETURN_IF_ERROR(routes_.Revoke(client, server_id));
  }
  return sb::OkStatus();
}

sb::Status SkyBridge::CheckInvariants() const {
  SB_RETURN_IF_ERROR(routes_.CheckInvariants());
  // The Rootkernel's per-core EPTP mirrors must agree with the VMCS state
  // the library's installs produced.
  return kernel_->rootkernel()->CheckInvariants();
}

uint64_t SkyBridge::InFlightCalls() const { return routes_.InFlightCalls(); }

sb::StatusOr<size_t> SkyBridge::InstalledBindings(mk::Process* client) const {
  return routes_.InstalledBindings(client);
}

uint32_t SkyBridge::ResidentBindingSlot(mk::Process* client, ServerId server_id,
                                        uint32_t core_id) const {
  const Binding* binding = routes_.Find(client, server_id);
  if (binding == nullptr) {
    return kNoEptpSlot;
  }
  return routes_.ResidentSlot(static_cast<int>(core_id), binding->ept_id);
}

}  // namespace skybridge
