// The SkyBridge trampoline code page.
//
// A single physical page of real x86-64 code mapped into every registered
// process at kTrampolineVa. It is the only page allowed to contain the
// VMFUNC instruction: the binary rewriter removes every other occurrence, so
// the trampoline's entry is the only gate into another address space.
//
// The MPK crossing backend has its own variant at kMpkTrampolineVa whose two
// gates are WRPKRU instead of VMFUNC — identical frame discipline, different
// (and cheaper) crossing primitive.

#ifndef SRC_SKYBRIDGE_TRAMPOLINE_H_
#define SRC_SKYBRIDGE_TRAMPOLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/skybridge/config.h"

namespace skybridge {

// Byte offsets of the two gates within the trampoline page.
struct TrampolineLayout {
  std::vector<uint8_t> code;
  size_t call_gate_offset = 0;    // direct_server_call: gate to the server.
  size_t return_gate_offset = 0;  // server return: gate back to the client.
};

// Assembles the trampoline (register save/restore, gate instruction, stack
// install, indirect call into the registered handler). The backend picks the
// gate primitive: VMFUNC for kEptp, WRPKRU for kMpk. The kSyscall backend
// has no trampoline (the kernel is the gate).
TrampolineLayout BuildTrampoline(
    CrossingBackendKind backend = CrossingBackendKind::kEptp);

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_TRAMPOLINE_H_
