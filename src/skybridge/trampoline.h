// The SkyBridge trampoline code page.
//
// A single physical page of real x86-64 code mapped into every registered
// process at kTrampolineVa. It is the only page allowed to contain the
// VMFUNC instruction: the binary rewriter removes every other occurrence, so
// the trampoline's entry is the only gate into another address space.

#ifndef SRC_SKYBRIDGE_TRAMPOLINE_H_
#define SRC_SKYBRIDGE_TRAMPOLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skybridge {

// Byte offsets of the two VMFUNC gates within the trampoline page.
struct TrampolineLayout {
  std::vector<uint8_t> code;
  size_t call_gate_offset = 0;    // direct_server_call: VMFUNC to the server.
  size_t return_gate_offset = 0;  // server return: VMFUNC back to the client.
};

// Assembles the trampoline (register save/restore, VMFUNC, stack install,
// indirect call into the registered handler).
TrampolineLayout BuildTrampoline();

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_TRAMPOLINE_H_
