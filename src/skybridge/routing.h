// Route control plane: binding records, the (client, server) hash index,
// the per-thread last-route cache front end, intrusive per-client LRU lists
// and the per-core EPTP slot caches — everything DirectServerCall consults
// to turn a ServerId into an armed EPTP slot.
//
// Concurrency model (DESIGN.md section 11): the route table is read-mostly.
// Steady-state calls on different cores touch only per-thread state (the
// RouteCache embedded in mk::Thread), per-binding state of *their own*
// disjoint binding (in-flight counters, LRU head check), *their own* core's
// slot cache and sharded telemetry counters — no shared mutable word.
// Mutation (registration, revocation, eviction, fault injection) is the
// sanctioned slow path and is serialized by the caller. Revocation publishes
// through `generation()`, an epoch every per-thread cache entry is stamped
// with: bumping it drops every thread's cached Binding* at once without
// touching the threads.
//
// Slot virtualization (DESIGN.md section 15): the hardware EPTP list holds
// at most hw::kEptpListCapacity views per core, but the table may carry tens
// of thousands of bindings. Each core runs a bounded slot working set
// (CoreSlotCache): slot 0 permanently holds the base EPT, every other slot
// is an LRU-managed cache entry over EPT ids. A call whose binding is not
// resident takes the slot-fault slow path in ArmGate, which calls
// EnsureResident to evict the per-core LRU victim via an in-place
// kEptpListReplace (freed slots never reshuffle their neighbours, so every
// other cached index stays valid — the per-core answer to the PR 1 central
// invalidation, which predated per-core mirrors and could leave core B
// stale after an eviction on core A).

#ifndef SRC_SKYBRIDGE_ROUTING_H_
#define SRC_SKYBRIDGE_ROUTING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/mk/kernel.h"
#include "src/skybridge/config.h"

namespace skybridge {

// Sentinel for "binding not on the client's EPTP list".
inline constexpr uint32_t kNoEptpSlot = 0xffffffffu;
inline constexpr size_t kSlotNotFound = static_cast<size_t>(-1);

struct ServerEntry {
  ServerId id;
  mk::Process* process;
  mk::Handler handler;
  int max_connections;
  hw::Gva handler_va;  // "function address" in the server's function list.
  // The crossing backend every binding of this server uses (DESIGN.md
  // section 16). Fixed at RegisterServer; clients and chain bindings
  // inherit it.
  CrossingBackendKind backend = CrossingBackendKind::kEptp;
  uint64_t next_connection = 0;
  // Binding consolidation (config.consolidate_bindings): the one binding EPT
  // every client of this server shares — later clients add their own CR3
  // remap via kAddCr3Remap instead of shallow-copying a fresh EPT. 0 until
  // the first client registers.
  uint64_t shared_ept_id = 0;
};

struct ClientState;

struct Binding {
  mk::Process* client;      // The process whose CR3 is live when used.
  ServerId server;
  uint64_t ept_id;          // Rootkernel EPT id (shared under consolidation).
  uint64_t server_key;      // Client -> server calling key.
  // Crossing backend, inherited from the server entry at registration.
  CrossingBackendKind backend = CrossingBackendKind::kEptp;
  // MPK backend only: the protection key guarding the server domain this
  // binding crosses into (1..15, round-robin allocated; 0 = unset).
  uint8_t pkey = 0;
  hw::Gva shared_buf;       // Region base, mapped at the same VA in both.
  uint64_t key_slot;        // Index in the server's calling-key table.
  // ---- Buffer carving (long-message path) ----
  // The region is num_slices page-aligned slices of slice_stride bytes,
  // each with shared_buffer_bytes of capacity. host_base is the
  // host-contiguous view of the whole region (nullptr for chain bindings,
  // which carry no buffer), enabling borrowed message views without
  // simulated copies. Slices are handed to connections by a free-list
  // allocator (BufferPool::AcquireSlice): thread t gets the next free
  // slice on first use and keeps it, so two threads never silently share
  // one slice (the old t % num_slices mapping aliased them).
  uint64_t slice_stride = 0;
  uint32_t num_slices = 0;
  uint8_t* host_base = nullptr;
  std::unordered_map<int, uint32_t> slice_of_tid;  // tid -> owned slice.
  std::vector<uint32_t> free_slices;               // LIFO free list.
  bool slices_carved = false;                      // free_slices populated.
  // Batched IPC: submissions sitting in this binding's rings that have not
  // had a completion posted yet (DESIGN.md section 13). Bounded by the ring
  // geometry; drained by FlushBatch / the adaptive drain leg.
  uint64_t queued_submissions = 0;
  bool installed = true;    // In the client's logical working set.
  // Revoked bindings refuse new calls; their working-set entry is removed
  // when the client drains. The record itself persists ("bindings are never
  // destroyed") and re-registration revives it.
  bool revoked = false;
  // Revocation scrub done (key slot zeroed, consolidation remap restored,
  // residency dropped where no sibling holds the EPT). Runs at sweep time —
  // after the client drains — never at Revoke time, so an in-flight call's
  // reply still translates through the binding EPT. Cleared on revival.
  bool swept = false;
  // Calls currently between entry and return on this binding. Working-set
  // state is never reshaped while the owning client has calls in flight.
  uint64_t in_flight = 0;
  // Chain bindings support nested calls (A -> B -> C): the EPT maps A's
  // CR3 to C's page tables, while authorization/keys come from the B -> C
  // registration (Section 4.2: "the Rootkernel also writes all processes'
  // EPTPs that the server depends on into the client's EPTP list"). Chain
  // EPTs are never consolidated (their CR3 remap pairs are per-chain).
  bool chain = false;
  // Intrusive per-client LRU links (head = most recently used).
  Binding* lru_prev = nullptr;
  Binding* lru_next = nullptr;
  ClientState* lru_owner = nullptr;
};

// Per-client fast-path state: the intrusive LRU list heads.
struct ClientState {
  Binding* lru_head = nullptr;  // Most recently used.
  Binding* lru_tail = nullptr;  // Eviction candidate end.
  uint64_t inflight = 0;        // Sum of in_flight over this client's bindings.
  bool pending_revocations = false;  // Sweep deferred until inflight drains.
};

// Per-core EPTP slot working set (DESIGN.md section 15). Slot 0 permanently
// holds the base EPT and is never evicted, pinned or LRU-linked; slots
// [1, budget) cache EPT ids with intrusive slot-index LRU links (head =
// most recently used). Freed slots are kEptpListReplace'd back to the base
// EPT (id 0) and parked on the free list, so the list never shrinks or
// reshuffles and every cached index for a *different* slot stays valid.
struct CoreSlotCache {
  std::vector<uint64_t> ids;  // slot -> EPT id; 0 = base EPT / freed slot.
  std::unordered_map<uint64_t, uint32_t> slot_of;  // EPT id -> slot.
  // Intrusive LRU over slot indices (kNoEptpSlot = null link). Maintained
  // in both eviction modes; only victim *choice* differs under the naive
  // ablation.
  std::vector<uint32_t> lru_prev;
  std::vector<uint32_t> lru_next;
  uint32_t lru_head = kNoEptpSlot;  // Most recently used.
  uint32_t lru_tail = kNoEptpSlot;  // Eviction candidate end.
  // Slots a live call depends on (entry view + routed view). Pinned slots
  // are never evicted: eviction ordering rule "a slot with a call between
  // entry and return keeps its translation".
  std::vector<uint32_t> pins;
  std::vector<uint32_t> free_slots;  // Freed slots holding the base EPT.
  uint32_t rr_cursor = 1;  // Naive-ablation round-robin victim cursor.
};

// Open-addressed hash index over (client, server) -> Binding*: linear
// probing, power-of-two capacity. Bindings are never destroyed, so there
// are no tombstones and lookups stop at the first empty slot.
class BindingIndex {
 public:
  BindingIndex() : slots_(kInitialSlots, nullptr) {}
  Binding* Find(const mk::Process* client, ServerId server) const;
  void Insert(Binding* binding);

 private:
  static constexpr size_t kInitialSlots = 64;
  static size_t Hash(const mk::Process* client, ServerId server);
  void Grow();
  std::vector<Binding*> slots_;
  size_t size_ = 0;
};

class RouteTable {
 public:
  // Per-binding teardown hook SweepRevoked invokes once per revoked binding
  // when the client drains (the facade zeroes the calling-key slot and
  // restores the consolidation CR3 remap).
  using RevokeScrub = std::function<void(Binding&)>;

  RouteTable(mk::Kernel& kernel, const SkyBridgeConfig& config);

  // O(1) index lookup (slow path of the lookup; no linear scans).
  Binding* Find(const mk::Process* client, ServerId server) const;
  // Per-thread last-route cache in front of Find; maintains the
  // binding_lookup_hits/misses counters.
  Binding* Lookup(mk::Thread* caller, ServerId server);
  // Registers a freshly created binding: index insert + LRU front.
  Binding* Adopt(std::unique_ptr<Binding> binding);
  // O(1) move-to-front on the client's intrusive LRU list.
  void Touch(Binding& binding);
  // Client-level working-set maintenance: make room for / reinstall a
  // binding in the client's logical eptp_list_ids set (bounded by
  // eptp_capacity). `pinned_ept` is never evicted (the EPT we must return
  // to). Residency is per-core and separate — see EnsureResident.
  sb::Status Install(hw::Core& core, Binding& binding, uint64_t pinned_ept);
  // Call drain accounting: decrements the in-flight counts taken at call
  // entry and runs any revocation sweep the drain unblocked.
  void FinishCall(Binding& binding);
  // Marks the (client, server) binding revoked (idempotent), bumps the
  // route epoch so every thread's cached route drops, and sweeps. NotFound
  // when the pair was never registered.
  sb::Status Revoke(mk::Process* client, ServerId server);
  // Scrubs every drained revoked binding of `client`: working-set removal,
  // the facade's RevokeScrub (key zeroing + consolidation remap restore),
  // and residency teardown on every core once no sibling binding still
  // holds the shared EPT. Defers itself while the client has calls in
  // flight.
  void SweepRevoked(mk::Process* client);
  // Fault-injection helper: evicts `binding` exactly as a concurrent
  // eviction would (working set + this core's residency), leaving the
  // caller's armed route stale.
  void FaultEvict(hw::Core& core, Binding& binding);
  // Index of `ept_id` in an id list, or kSlotNotFound.
  static size_t EptpSlotOfId(const std::vector<uint64_t>& ids, uint64_t ept_id);

  // ---- Per-core slot residency (DESIGN.md section 15) ----
  // Returns the slot `ept_id` occupies on this core, making it resident if
  // needed: free slot reuse, then append while under budget, then LRU (or
  // round-robin under the ablation) victim eviction via kEptpListReplace.
  // Touches the slot to the LRU head on hit. `faultable` arms the
  // kFaultSlotInstall point (the ArmGate slot-fault leg); dispatch-driven
  // installs pass false so a context switch can't be fault-injected.
  sb::StatusOr<uint32_t> EnsureResident(hw::Core& core, uint64_t ept_id, bool faultable);
  // Context-switch hook body: makes `process`'s own EPT resident and points
  // the core's active view at it. Eager (migration) additionally prefetches
  // the client's installed bindings into *free* capacity — prefetch never
  // evicts a warmer core's working set.
  sb::Status InstallProcessView(hw::Core& core, mk::Process* process, bool eager);
  // Drops `ept_id`'s residency on one core / every core. Skips pinned and
  // active slots (an in-flight call keeps its views; the eviction ordering
  // rule again) — callers treat residual residency as benign.
  void EvictResidency(hw::Core& core, uint64_t ept_id);
  void EvictResidencyEverywhere(uint64_t ept_id);
  // Slot `ept_id` occupies on `core_id`, or kNoEptpSlot (no LRU touch).
  uint32_t ResidentSlot(int core_id, uint64_t ept_id) const;
  // EPT id in `slot` on `core_id` (0 = base EPT / freed / out of range).
  uint64_t EptIdAtSlot(int core_id, uint32_t slot) const;
  // Pin accounting for slots a live call depends on (see SlotPinGuard).
  void PinSlot(int core_id, uint32_t slot);
  void UnpinSlot(int core_id, uint32_t slot);

  // Registers the facade's per-binding revocation scrub (see RevokeScrub).
  void SetRevokeScrub(RevokeScrub scrub) { revoke_scrub_ = std::move(scrub); }
  // Every client with a live (non-revoked) binding to `server`, chain
  // origins included. Drives SkyBridge::RevokeServer.
  std::vector<mk::Process*> ClientsOfServer(ServerId server) const;

  // Structural invariants the stress runner asserts between events: LRU
  // list consistency, working-set/ids agreement, per-client capacity,
  // revoked bindings scrubbed once drained, in-flight accounting, and the
  // per-core residency cross-check against the Rootkernel's CoreEptpState
  // mirrors (every resident slot maps to a live EPT holder and vice versa).
  sb::Status CheckInvariants() const;
  uint64_t InFlightCalls() const;
  // Batch submissions enqueued across all bindings with no completion
  // posted yet. Zero at quiesce (every submitted entry was flushed or
  // failed); nonzero with no ring holding entries is leaked accounting.
  uint64_t QueuedSubmissions() const;
  sb::StatusOr<size_t> InstalledBindings(const mk::Process* client) const;

  // The route-cache invalidation epoch (relaxed; see the header comment).
  uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

 private:
  // Slot-index LRU surgery over a core's cache (slot must be linked /
  // unlinked respectively).
  static void LruUnlink(CoreSlotCache& cache, uint32_t slot);
  static void LruPushFront(CoreSlotCache& cache, uint32_t slot);
  static void LruTouch(CoreSlotCache& cache, uint32_t slot);
  // Victim slot for an eviction on `core`, or kNoEptpSlot when every
  // candidate is pinned or active: LRU tail walk, or round-robin under the
  // naive ablation (config.lru_slot_eviction = false).
  uint32_t PickVictim(const hw::Core& core, CoreSlotCache& cache) const;

  mk::Kernel* kernel_;
  const SkyBridgeConfig* config_;
  std::vector<std::unique_ptr<Binding>> bindings_;  // Ownership only.
  BindingIndex index_;                              // (client, server) -> binding.
  std::unordered_map<mk::Process*, ClientState> clients_;  // Stable nodes.
  // EPT id -> every binding translating through it. Singleton lists without
  // consolidation; the shared-EPT sibling set with it. Drives the "last
  // holder drops residency" rule in SweepRevoked and the invariant sweep.
  std::unordered_map<uint64_t, std::vector<Binding*>> by_ept_;
  // Per-process own-EPT ids seen by InstallProcessView — resident ids in
  // this set are process views, not bindings, for the invariant cross-check.
  std::unordered_set<uint64_t> process_ept_ids_;
  std::vector<CoreSlotCache> core_cache_;  // Indexed by core id.
  size_t budget_;  // min(config.eptp_working_set, hw list capacity).
  RevokeScrub revoke_scrub_;
  // Epoch for the per-thread route caches. Bindings are never destroyed, so
  // this only moves on revocation (and any future removal path); bumping it
  // invalidates every thread's cached Binding* at once.
  std::atomic<uint64_t> generation_{1};
  sb::telemetry::Counter* lookup_hits_;
  sb::telemetry::Counter* lookup_misses_;
  sb::telemetry::Counter* bindings_revoked_;
  sb::telemetry::Counter* slot_installs_;
  sb::telemetry::Counter* slot_evictions_;
};

// In-flight accounting bracketing a call on every exit path (both the
// authorizing binding and the routed one when they differ). Revocation
// never reshapes working-set state under a live call — it defers to this
// guard's drain.
class InFlightGuard {
 public:
  InFlightGuard() = default;
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;
  void Begin(RouteTable* table, Binding* perm, Binding* route) {
    table_ = table;
    a_ = perm;
    b_ = route != perm ? route : nullptr;
    ++a_->in_flight;
    ++a_->lru_owner->inflight;
    if (b_ != nullptr) {
      ++b_->in_flight;
      ++b_->lru_owner->inflight;
    }
  }
  ~InFlightGuard() {
    if (table_ == nullptr) {
      return;
    }
    if (b_ != nullptr) {
      table_->FinishCall(*b_);
    }
    table_->FinishCall(*a_);
  }

 private:
  RouteTable* table_ = nullptr;
  Binding* a_ = nullptr;
  Binding* b_ = nullptr;
};

// Pins the two slots a live call translates through (entry view + routed
// view) on the call's core, so no slot fault or eviction sweep can replace
// them mid-call. Declared *after* the InFlightGuard in call scope: the
// destructor order releases pins first, so the drain-triggered revocation
// sweep the guard runs sees the slots unpinned.
class SlotPinGuard {
 public:
  SlotPinGuard() = default;
  SlotPinGuard(const SlotPinGuard&) = delete;
  SlotPinGuard& operator=(const SlotPinGuard&) = delete;
  void Pin(RouteTable* table, int core_id, uint32_t entry_slot, uint32_t route_slot) {
    table_ = table;
    core_id_ = core_id;
    entry_ = entry_slot;
    route_ = route_slot;
    // Symmetric increments even when the slots coincide (nested-call legs
    // re-enter the same view); Release mirrors them exactly.
    table_->PinSlot(core_id_, entry_);
    table_->PinSlot(core_id_, route_);
  }
  void Release() {
    if (table_ == nullptr) {
      return;
    }
    table_->UnpinSlot(core_id_, route_);
    table_->UnpinSlot(core_id_, entry_);
    table_ = nullptr;
  }
  ~SlotPinGuard() { Release(); }

 private:
  RouteTable* table_ = nullptr;
  int core_id_ = 0;
  uint32_t entry_ = kNoEptpSlot;
  uint32_t route_ = kNoEptpSlot;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_ROUTING_H_
