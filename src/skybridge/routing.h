// Route control plane: binding records, the (client, server) hash index,
// the per-thread last-route cache front end, intrusive per-client LRU lists
// and the EPTP-slot caches — everything DirectServerCall consults to turn a
// ServerId into an armed EPTP slot.
//
// Concurrency model (DESIGN.md section 11): the route table is read-mostly.
// Steady-state calls on different cores touch only per-thread state (the
// RouteCache embedded in mk::Thread), per-binding state of *their own*
// disjoint binding (in-flight counters, LRU head check) and sharded
// telemetry counters — no shared mutable word. Mutation (registration,
// revocation, eviction, fault injection) is the sanctioned slow path and is
// serialized by the caller. Revocation publishes through `generation()`, an
// epoch every per-thread cache entry is stamped with: bumping it drops every
// thread's cached Binding* at once without touching the threads.

#ifndef SRC_SKYBRIDGE_ROUTING_H_
#define SRC_SKYBRIDGE_ROUTING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/mk/kernel.h"
#include "src/skybridge/config.h"

namespace skybridge {

// Sentinel for "binding not on the client's EPTP list".
inline constexpr uint32_t kNoEptpSlot = 0xffffffffu;
inline constexpr size_t kSlotNotFound = static_cast<size_t>(-1);

struct ServerEntry {
  ServerId id;
  mk::Process* process;
  mk::Handler handler;
  int max_connections;
  hw::Gva handler_va;  // "function address" in the server's function list.
  uint64_t next_connection = 0;
};

struct ClientState;

struct Binding {
  mk::Process* client;      // The process whose CR3 is live when used.
  ServerId server;
  uint64_t ept_id;          // Rootkernel EPT id.
  uint64_t server_key;      // Client -> server calling key.
  hw::Gva shared_buf;       // Region base, mapped at the same VA in both.
  uint64_t key_slot;        // Index in the server's calling-key table.
  // ---- Buffer carving (long-message path) ----
  // The region is num_slices page-aligned slices of slice_stride bytes,
  // each with shared_buffer_bytes of capacity. host_base is the
  // host-contiguous view of the whole region (nullptr for chain bindings,
  // which carry no buffer), enabling borrowed message views without
  // simulated copies. Slices are handed to connections by a free-list
  // allocator (BufferPool::AcquireSlice): thread t gets the next free
  // slice on first use and keeps it, so two threads never silently share
  // one slice (the old t % num_slices mapping aliased them).
  uint64_t slice_stride = 0;
  uint32_t num_slices = 0;
  uint8_t* host_base = nullptr;
  std::unordered_map<int, uint32_t> slice_of_tid;  // tid -> owned slice.
  std::vector<uint32_t> free_slices;               // LIFO free list.
  bool slices_carved = false;                      // free_slices populated.
  // Batched IPC: submissions sitting in this binding's rings that have not
  // had a completion posted yet (DESIGN.md section 13). Bounded by the ring
  // geometry; drained by FlushBatch / the adaptive drain leg.
  uint64_t queued_submissions = 0;
  bool installed = true;    // Currently on the client's EPTP list.
  // Revoked bindings refuse new calls; their EPTP entry is removed when
  // the client drains. The record itself persists ("bindings are never
  // destroyed") and re-registration revives it.
  bool revoked = false;
  // Calls currently between entry and return on this binding. The EPTP
  // list is never reshaped while the owning client has calls in flight.
  uint64_t in_flight = 0;
  // Chain bindings support nested calls (A -> B -> C): the EPT maps A's
  // CR3 to C's page tables, while authorization/keys come from the B -> C
  // registration (Section 4.2: "the Rootkernel also writes all processes'
  // EPTPs that the server depends on into the client's EPTP list").
  bool chain = false;
  // ---- Fast-path state ----
  // Cached index of `ept_id` on the client's EPTP list; kNoEptpSlot while
  // evicted. Maintained centrally by Install/RefreshEptpSlots so
  // DirectServerCall never scans the list.
  uint32_t eptp_slot = kNoEptpSlot;
  // Intrusive per-client LRU links (head = most recently used).
  Binding* lru_prev = nullptr;
  Binding* lru_next = nullptr;
  ClientState* lru_owner = nullptr;
};

// Per-client fast-path state: the intrusive LRU list heads.
struct ClientState {
  Binding* lru_head = nullptr;  // Most recently used.
  Binding* lru_tail = nullptr;  // Eviction candidate end.
  uint64_t inflight = 0;        // Sum of in_flight over this client's bindings.
  bool pending_revocations = false;  // Sweep deferred until inflight drains.
};

// Open-addressed hash index over (client, server) -> Binding*: linear
// probing, power-of-two capacity. Bindings are never destroyed, so there
// are no tombstones and lookups stop at the first empty slot.
class BindingIndex {
 public:
  BindingIndex() : slots_(kInitialSlots, nullptr) {}
  Binding* Find(const mk::Process* client, ServerId server) const;
  void Insert(Binding* binding);

 private:
  static constexpr size_t kInitialSlots = 64;
  static size_t Hash(const mk::Process* client, ServerId server);
  void Grow();
  std::vector<Binding*> slots_;
  size_t size_ = 0;
};

class RouteTable {
 public:
  RouteTable(mk::Kernel& kernel, const SkyBridgeConfig& config);

  // O(1) index lookup (slow path of the lookup; no linear scans).
  Binding* Find(const mk::Process* client, ServerId server) const;
  // Per-thread last-route cache in front of Find; maintains the
  // binding_lookup_hits/misses counters.
  Binding* Lookup(mk::Thread* caller, ServerId server);
  // Registers a freshly created binding: index insert + LRU front.
  Binding* Adopt(std::unique_ptr<Binding> binding);
  // O(1) move-to-front on the client's intrusive LRU list.
  void Touch(Binding& binding);
  // LRU maintenance: make room for / reinstall a binding. `pinned_ept` is
  // never evicted (the EPT we must return to).
  sb::Status Install(hw::Core& core, Binding& binding, uint64_t pinned_ept);
  // Recomputes every cached eptp_slot for `client` after the EPTP list
  // changed shape — the central invalidation point for the slot caches.
  void RefreshEptpSlots(mk::Process* client);
  // Call drain accounting: decrements the in-flight counts taken at call
  // entry and runs any revocation sweep the drain unblocked.
  void FinishCall(Binding& binding);
  // Marks the (client, server) binding revoked (idempotent), bumps the
  // route epoch so every thread's cached route drops, and sweeps. NotFound
  // when the pair was never registered.
  sb::Status Revoke(mk::Process* client, ServerId server);
  // Uninstalls every drained revoked binding of `client` (EPTP-list erase +
  // central slot refresh + reinstall on live cores); defers itself while the
  // client still has calls in flight.
  void SweepRevoked(mk::Process* client);
  // Fault-injection helper: evicts `binding` exactly as a concurrent
  // Install LRU pass would, leaving the caller's cached slot stale.
  void FaultEvict(hw::Core& core, Binding& binding);
  // Index of `ept_id` on an EPTP list, or kSlotNotFound. Only used on the
  // slow path (entry-slot restore after a reinstall reshuffles the list).
  static size_t EptpSlotOfId(const std::vector<uint64_t>& ids, uint64_t ept_id);

  // Structural invariants the stress runner asserts between events: LRU
  // list consistency, cached-slot/EPTP-list agreement, per-client capacity,
  // revoked bindings uninstalled once drained, in-flight accounting.
  sb::Status CheckInvariants() const;
  uint64_t InFlightCalls() const;
  // Batch submissions enqueued across all bindings with no completion
  // posted yet. Zero at quiesce (every submitted entry was flushed or
  // failed); nonzero with no ring holding entries is leaked accounting.
  uint64_t QueuedSubmissions() const;
  sb::StatusOr<size_t> InstalledBindings(const mk::Process* client) const;

  // The route-cache invalidation epoch (relaxed; see the header comment).
  uint64_t generation() const { return generation_.load(std::memory_order_relaxed); }

 private:
  mk::Kernel* kernel_;
  const SkyBridgeConfig* config_;
  std::vector<std::unique_ptr<Binding>> bindings_;  // Ownership only.
  BindingIndex index_;                              // (client, server) -> binding.
  std::unordered_map<mk::Process*, ClientState> clients_;  // Stable nodes.
  // Epoch for the per-thread route caches. Bindings are never destroyed, so
  // this only moves on revocation (and any future removal path); bumping it
  // invalidates every thread's cached Binding* at once.
  std::atomic<uint64_t> generation_{1};
  sb::telemetry::Counter* lookup_hits_;
  sb::telemetry::Counter* lookup_misses_;
  sb::telemetry::Counter* bindings_revoked_;
};

// In-flight accounting bracketing a call on every exit path (both the
// authorizing binding and the routed one when they differ). Revocation
// never reshapes an EPTP list under a live call — it defers to this
// guard's drain.
class InFlightGuard {
 public:
  InFlightGuard() = default;
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;
  void Begin(RouteTable* table, Binding* perm, Binding* route) {
    table_ = table;
    a_ = perm;
    b_ = route != perm ? route : nullptr;
    ++a_->in_flight;
    ++a_->lru_owner->inflight;
    if (b_ != nullptr) {
      ++b_->in_flight;
      ++b_->lru_owner->inflight;
    }
  }
  ~InFlightGuard() {
    if (table_ == nullptr) {
      return;
    }
    if (b_ != nullptr) {
      table_->FinishCall(*b_);
    }
    table_->FinishCall(*a_);
  }

 private:
  RouteTable* table_ = nullptr;
  Binding* a_ = nullptr;
  Binding* b_ = nullptr;
};

}  // namespace skybridge

#endif  // SRC_SKYBRIDGE_ROUTING_H_
