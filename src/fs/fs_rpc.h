// File-system RPC: the protocol between SQLite-like clients and the xv6fs
// server process (one IPC per operation, like the paper's stack).

#ifndef SRC_FS_FS_RPC_H_
#define SRC_FS_FS_RPC_H_

#include <string>

#include "src/fs/xv6fs.h"
#include "src/mk/kernel.h"

namespace fsys {

enum class FsOp : uint64_t {
  kOpen = 1,    // data: path           -> tag=inum
  kCreate = 2,  // data: path           -> tag=inum
  kRead = 3,    // data: inum,off,len   -> tag=bytes, data=payload
  kWrite = 4,   // data: inum,off,bytes -> tag=1
  kSize = 5,    // data: inum           -> tag=size
  kUnlink = 6,  // data: path           -> tag=1
};

inline constexpr uint64_t kFsError = ~0ULL;

// Wraps an Xv6Fs instance as an IPC handler. The handler charges FS work to
// the serving core and serializes everything behind the FS big lock in
// virtual time.
mk::Handler MakeFsHandler(Xv6Fs* fs, hw::Gva cache_base = 0);

// Client-side stub over any transport (kernel IPC, SkyBridge or direct).
class FsClient {
 public:
  using Transport = std::function<sb::StatusOr<mk::Message>(const mk::Message&)>;

  explicit FsClient(Transport transport) : transport_(std::move(transport)) {}

  sb::StatusOr<uint32_t> Open(const std::string& path);
  sb::StatusOr<uint32_t> Create(const std::string& path);
  sb::StatusOr<std::vector<uint8_t>> Read(uint32_t inum, uint32_t offset, uint32_t len);
  sb::Status Write(uint32_t inum, uint32_t offset, std::span<const uint8_t> data);
  sb::StatusOr<uint32_t> Size(uint32_t inum);
  sb::Status Unlink(const std::string& path);

  uint64_t rpcs() const { return rpcs_; }

 private:
  sb::StatusOr<mk::Message> Call(const mk::Message& msg);

  Transport transport_;
  uint64_t rpcs_ = 0;
};

}  // namespace fsys

#endif  // SRC_FS_FS_RPC_H_
