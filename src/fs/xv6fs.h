// xv6fs: a log-based, crash-consistent file system (the paper's ported
// xv6fs/FSCQ stand-in).
//
// On-disk layout (512-byte blocks):
//   [ superblock | log header + log blocks | inodes | free bitmap | data ]
//
// All writes go through a write-ahead log: inside a transaction
// (BeginOp/EndOp) dirty blocks are absorbed into the log; EndOp commits by
// writing the data into the log area, then the log header, then installing
// the blocks to their home locations and clearing the header — the classic
// xv6 protocol, with its ~2x write amplification.
//
// The file system is single-threaded behind one big lock (big_lock()), which
// is exactly why the paper's Figure 9-11 scalability is poor: "Since the
// xv6fs does not support multi-threading, we use one big lock in the file
// system."
//
// All device traffic goes through a BlockTransport, so the same code runs
// over direct calls, kernel IPC or SkyBridge.

#ifndef SRC_FS_XV6FS_H_
#define SRC_FS_XV6FS_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/fs/block_device.h"
#include "src/sim/executor.h"

namespace fsys {

inline constexpr uint32_t kFsMagic = 0x73667678;  // "xvfs"
inline constexpr uint32_t kNumDirect = 12;
inline constexpr uint32_t kPtrsPerBlock = kBlockSize / 4;
inline constexpr uint32_t kMaxFileBlocks =
    kNumDirect + kPtrsPerBlock + kPtrsPerBlock * kPtrsPerBlock;
inline constexpr uint32_t kDirNameLen = 30;
inline constexpr uint32_t kRootInum = 1;
inline constexpr uint32_t kLogCapacity = 63;  // Max blocks per transaction.

enum class InodeType : uint16_t { kFree = 0, kDir = 1, kFile = 2 };

struct Superblock {
  uint32_t magic = 0;
  uint32_t size = 0;        // Total blocks.
  uint32_t nlog = 0;        // Log blocks (incl. header).
  uint32_t ninodes = 0;
  uint32_t log_start = 0;
  uint32_t inode_start = 0;
  uint32_t bmap_start = 0;
  uint32_t data_start = 0;
};

// 64 bytes each, 8 per block.
struct DiskInode {
  uint16_t type = 0;
  uint16_t nlink = 0;
  uint32_t size = 0;
  uint32_t addrs[kNumDirect + 2] = {};  // Direct + single + double indirect.
};

struct FsStats {
  uint64_t block_reads = 0;     // Transport reads issued (cache misses).
  uint64_t block_writes = 0;    // Transport writes issued.
  uint64_t cache_hits = 0;
  uint64_t transactions = 0;
  uint64_t log_absorptions = 0; // Writes absorbed into an open transaction.
};

class Xv6Fs {
 public:
  struct Config {
    uint32_t total_blocks = 8192;
    uint32_t ninodes = 512;
    uint32_t nlog = kLogCapacity + 1;  // Header + data.
    size_t buffer_cache_entries = 64;
  };

  Xv6Fs(BlockTransport transport, Config config);
  explicit Xv6Fs(BlockTransport transport);

  // Formats the device (writes superblock, empty log, root directory).
  sb::Status Mkfs();
  // Reads the superblock and recovers the log if a commit was interrupted.
  sb::Status Mount();

  // ---- Transactions ----
  sb::Status BeginOp();
  sb::Status EndOp();
  bool in_transaction() const { return in_op_; }

  // ---- Files (paths are "/name" or "/dir/name") ----
  sb::StatusOr<uint32_t> Create(const std::string& path, InodeType type = InodeType::kFile);
  sb::StatusOr<uint32_t> Lookup(const std::string& path);
  sb::Status WriteFile(uint32_t inum, uint32_t offset, std::span<const uint8_t> data);
  sb::StatusOr<uint32_t> ReadFile(uint32_t inum, uint32_t offset, std::span<uint8_t> out);
  sb::StatusOr<uint32_t> FileSize(uint32_t inum);
  sb::Status Truncate(uint32_t inum);
  sb::Status Unlink(const std::string& path);
  // Atomically (within one log transaction) moves a file to a new name,
  // replacing any existing target.
  sb::Status Rename(const std::string& from, const std::string& to);
  sb::StatusOr<std::vector<std::string>> ListDir(const std::string& path);

  // Consistency check (fsck): every allocated inode's blocks are marked used
  // and referenced at most once, directory entries point at live inodes, and
  // no unreachable inode is marked in use. Returns Internal with a
  // description on the first inconsistency.
  sb::Status Fsck();

  // The big lock serializing every operation in virtual time.
  sim::FifoResource& big_lock() { return big_lock_; }

  const FsStats& stats() const { return stats_; }
  const Superblock& superblock() const { return sb_; }

  // Optional charged execution: when set, FS logic charges cycles and the
  // buffer cache touches this process heap region on the core.
  void SetChargedContext(hw::Core* core, hw::Gva cache_base) {
    core_ = core;
    cache_base_ = cache_base;
  }

 private:
  struct Buf {
    std::vector<uint8_t> data;
    bool dirty = false;
  };

  // ---- Buffer cache ----
  sb::StatusOr<Buf*> GetBlock(uint32_t block);
  void MarkDirty(uint32_t block);
  sb::Status FlushBlock(uint32_t block, Buf& buf);
  sb::Status EvictIfNeeded();
  void ChargeCacheTouch(uint32_t block, bool write);

  // ---- Log ----
  sb::Status LogWrite(uint32_t block);  // Record a block in the current op.
  sb::Status Commit();
  sb::Status RecoverLog();

  // ---- Inodes ----
  sb::StatusOr<uint32_t> AllocInode(InodeType type);
  sb::Status ReadInode(uint32_t inum, DiskInode& out);
  sb::Status WriteInode(uint32_t inum, const DiskInode& inode);
  sb::Status FreeInode(uint32_t inum);
  // Block number backing file block `fbn`, allocating if `alloc`.
  sb::StatusOr<uint32_t> BlockMap(DiskInode& inode, uint32_t inum, uint32_t fbn, bool alloc);

  // ---- Free bitmap ----
  sb::StatusOr<uint32_t> AllocBlock();
  sb::Status FreeBlock(uint32_t block);

  // ---- Directories ----
  sb::StatusOr<uint32_t> DirLookup(uint32_t dir_inum, const std::string& name);
  sb::Status DirLink(uint32_t dir_inum, const std::string& name, uint32_t inum);
  sb::Status DirUnlink(uint32_t dir_inum, const std::string& name);
  // Resolves the parent directory of `path`; sets `name` to the final part.
  sb::StatusOr<uint32_t> ResolveParent(const std::string& path, std::string* name);

  BlockTransport transport_;
  Config config_;
  Superblock sb_;
  bool mounted_ = false;
  bool in_op_ = false;
  std::vector<uint32_t> op_blocks_;  // Blocks dirtied by the current op.
  std::unordered_map<uint32_t, Buf> cache_;
  std::list<uint32_t> cache_lru_;  // Front = most recent.
  FsStats stats_;
  sim::FifoResource big_lock_;
  hw::Core* core_ = nullptr;
  hw::Gva cache_base_ = 0;
};

}  // namespace fsys

#endif  // SRC_FS_XV6FS_H_
