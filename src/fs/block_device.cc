#include "src/fs/block_device.h"

#include <cstring>

#include "src/base/logging.h"

namespace fsys {

RamDisk::RamDisk(uint32_t num_blocks, mk::Process* process, hw::Gva heap_base)
    : num_blocks_(num_blocks),
      process_(process),
      heap_base_(heap_base),
      data_(static_cast<size_t>(num_blocks) * kBlockSize, 0) {}

sb::Status RamDisk::Read(hw::Core* core, uint32_t block, std::span<uint8_t> out) {
  if (block >= num_blocks_ || out.size() != kBlockSize) {
    return sb::OutOfRange("bad block read");
  }
  ++reads_;
  if (core != nullptr && heap_base_ != 0) {
    // Cost-model traffic; never fails the functional I/O.
    (void)core->TouchData(heap_base_ + static_cast<uint64_t>(block) * kBlockSize, kBlockSize,
                          /*write=*/false);
  }
  std::memcpy(out.data(), data_.data() + static_cast<size_t>(block) * kBlockSize, kBlockSize);
  return sb::OkStatus();
}

sb::Status RamDisk::Write(hw::Core* core, uint32_t block, std::span<const uint8_t> in) {
  if (block >= num_blocks_ || in.size() != kBlockSize) {
    return sb::OutOfRange("bad block write");
  }
  ++writes_;
  if (core != nullptr && heap_base_ != 0) {
    (void)core->TouchData(heap_base_ + static_cast<uint64_t>(block) * kBlockSize, kBlockSize,
                          /*write=*/true);
  }
  std::memcpy(data_.data() + static_cast<size_t>(block) * kBlockSize, in.data(), kBlockSize);
  return sb::OkStatus();
}

mk::Handler RamDisk::MakeHandler() {
  return [this](mk::CallEnv& env) -> mk::Message {
    const mk::Message& req = env.request;
    const std::span<const uint8_t> p = req.payload();
    switch (req.tag) {
      case kBlockRead: {
        if (p.size() < 4) {
          return mk::Message(0);
        }
        uint32_t block = 0;
        std::memcpy(&block, p.data(), 4);
        // In-place reply: read the block straight into the connection's
        // shared-buffer slice so the bridge skips the reply copy. (The block
        // number was decoded above; overwriting the request is fine.)
        if (env.reply_buffer.size() >= kBlockSize) {
          const std::span<uint8_t> out(env.reply_buffer.data(), kBlockSize);
          if (!Read(&env.core, block, out).ok()) {
            return mk::Message(0);
          }
          return mk::Message::Borrowed(1, out);
        }
        mk::Message reply(1);
        reply.data.resize(kBlockSize);
        if (!Read(&env.core, block, reply.data).ok()) {
          return mk::Message(0);
        }
        return reply;
      }
      case kBlockWrite: {
        if (p.size() < 4 + kBlockSize) {
          return mk::Message(0);
        }
        uint32_t block = 0;
        std::memcpy(&block, p.data(), 4);
        if (!Write(&env.core, block, p.subspan(4, kBlockSize)).ok()) {
          return mk::Message(0);
        }
        return mk::Message(1);
      }
      case kBlockSizeQuery:
        return mk::Message(num_blocks_);
      default:
        return mk::Message(0);
    }
  };
}

mk::Message EncodeBlockRead(uint32_t block) {
  mk::Message msg(kBlockRead);
  msg.data.resize(4);
  std::memcpy(msg.data.data(), &block, 4);
  return msg;
}

mk::Message EncodeBlockWrite(uint32_t block, std::span<const uint8_t> data) {
  SB_CHECK(data.size() == kBlockSize);
  mk::Message msg(kBlockWrite);
  msg.data.resize(4 + kBlockSize);
  std::memcpy(msg.data.data(), &block, 4);
  std::memcpy(msg.data.data() + 4, data.data(), kBlockSize);
  return msg;
}

sb::Status TransportReadBlock(const BlockTransport& transport, uint32_t block,
                              std::span<uint8_t> out) {
  SB_CHECK(out.size() == kBlockSize);
  SB_ASSIGN_OR_RETURN(const mk::Message reply, transport(EncodeBlockRead(block)));
  if (reply.tag != 1 || reply.size() != kBlockSize) {
    return sb::Internal("block read failed");
  }
  std::memcpy(out.data(), reply.payload().data(), kBlockSize);
  return sb::OkStatus();
}

sb::Status TransportWriteBlock(const BlockTransport& transport, uint32_t block,
                               std::span<const uint8_t> in) {
  SB_ASSIGN_OR_RETURN(const mk::Message reply, transport(EncodeBlockWrite(block, in)));
  if (reply.tag != 1) {
    return sb::Internal("block write failed");
  }
  return sb::OkStatus();
}

}  // namespace fsys
