#include "src/fs/xv6fs.h"

#include <algorithm>
#include <cstring>

#include "src/base/logging.h"

namespace fsys {
namespace {

constexpr uint32_t kInodesPerBlock = kBlockSize / sizeof(DiskInode);
constexpr uint32_t kBitsPerBlock = kBlockSize * 8;
constexpr uint32_t kDirentSize = 32;  // u16 inum + 30-char name.

static_assert(sizeof(DiskInode) == 64, "DiskInode must be 64 bytes");

void PutU32(std::vector<uint8_t>& buf, size_t off, uint32_t v) {
  std::memcpy(buf.data() + off, &v, 4);
}

uint32_t GetU32(const std::vector<uint8_t>& buf, size_t off) {
  uint32_t v = 0;
  std::memcpy(&v, buf.data() + off, 4);
  return v;
}

}  // namespace

Xv6Fs::Xv6Fs(BlockTransport transport, Config config)
    : transport_(std::move(transport)), config_(config) {}

Xv6Fs::Xv6Fs(BlockTransport transport) : Xv6Fs(std::move(transport), Config{}) {}

// ---------- Buffer cache ----------

void Xv6Fs::ChargeCacheTouch(uint32_t block, bool write) {
  if (core_ != nullptr && cache_base_ != 0) {
    const uint64_t slot = block % config_.buffer_cache_entries;
    (void)core_->TouchData(cache_base_ + slot * kBlockSize, 128, write);
    core_->AdvanceCycles(20);  // Cache lookup logic.
  }
}

sb::StatusOr<Xv6Fs::Buf*> Xv6Fs::GetBlock(uint32_t block) {
  auto it = cache_.find(block);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    cache_lru_.remove(block);
    cache_lru_.push_front(block);
    ChargeCacheTouch(block, false);
    return &it->second;
  }
  SB_RETURN_IF_ERROR(EvictIfNeeded());
  Buf buf;
  buf.data.resize(kBlockSize);
  SB_RETURN_IF_ERROR(TransportReadBlock(transport_, block, buf.data));
  ++stats_.block_reads;
  ChargeCacheTouch(block, true);
  auto [pos, inserted] = cache_.emplace(block, std::move(buf));
  SB_CHECK(inserted);
  cache_lru_.push_front(block);
  return &pos->second;
}

void Xv6Fs::MarkDirty(uint32_t block) {
  auto it = cache_.find(block);
  SB_CHECK(it != cache_.end());
  it->second.dirty = true;
  ChargeCacheTouch(block, true);
}

sb::Status Xv6Fs::FlushBlock(uint32_t block, Buf& buf) {
  if (!buf.dirty) {
    return sb::OkStatus();
  }
  SB_RETURN_IF_ERROR(TransportWriteBlock(transport_, block, buf.data));
  ++stats_.block_writes;
  buf.dirty = false;
  return sb::OkStatus();
}

sb::Status Xv6Fs::EvictIfNeeded() {
  while (cache_.size() >= config_.buffer_cache_entries) {
    // Evict the least-recently used clean block; flush if dirty (dirty
    // blocks inside a transaction are pinned until commit).
    uint32_t victim = UINT32_MAX;
    for (auto it = cache_lru_.rbegin(); it != cache_lru_.rend(); ++it) {
      const bool pinned =
          in_op_ && std::find(op_blocks_.begin(), op_blocks_.end(), *it) != op_blocks_.end();
      if (!pinned) {
        victim = *it;
        break;
      }
    }
    if (victim == UINT32_MAX) {
      return sb::ResourceExhausted("buffer cache full of pinned blocks");
    }
    auto it = cache_.find(victim);
    SB_CHECK(it != cache_.end());
    SB_RETURN_IF_ERROR(FlushBlock(victim, it->second));
    cache_.erase(it);
    cache_lru_.remove(victim);
  }
  return sb::OkStatus();
}

// ---------- Log ----------

sb::Status Xv6Fs::BeginOp() {
  if (in_op_) {
    return sb::FailedPrecondition("transaction already open");
  }
  in_op_ = true;
  op_blocks_.clear();
  return sb::OkStatus();
}

sb::Status Xv6Fs::LogWrite(uint32_t block) {
  SB_CHECK(in_op_) << "LogWrite outside a transaction";
  MarkDirty(block);
  if (std::find(op_blocks_.begin(), op_blocks_.end(), block) != op_blocks_.end()) {
    ++stats_.log_absorptions;  // Absorbed: already in this op.
    return sb::OkStatus();
  }
  if (op_blocks_.size() >= kLogCapacity) {
    return sb::ResourceExhausted("transaction exceeds log capacity");
  }
  op_blocks_.push_back(block);
  return sb::OkStatus();
}

sb::Status Xv6Fs::Commit() {
  if (op_blocks_.empty()) {
    return sb::OkStatus();
  }
  // 1. Copy dirty blocks into the log area.
  for (size_t i = 0; i < op_blocks_.size(); ++i) {
    auto it = cache_.find(op_blocks_[i]);
    SB_CHECK(it != cache_.end());
    SB_RETURN_IF_ERROR(TransportWriteBlock(
        transport_, sb_.log_start + 1 + static_cast<uint32_t>(i), it->second.data));
    ++stats_.block_writes;
  }
  // 2. Write the log header: the commit point.
  std::vector<uint8_t> header(kBlockSize, 0);
  PutU32(header, 0, static_cast<uint32_t>(op_blocks_.size()));
  for (size_t i = 0; i < op_blocks_.size(); ++i) {
    PutU32(header, 4 + i * 4, op_blocks_[i]);
  }
  SB_RETURN_IF_ERROR(TransportWriteBlock(transport_, sb_.log_start, header));
  ++stats_.block_writes;
  // 3. Install to home locations.
  for (const uint32_t block : op_blocks_) {
    auto it = cache_.find(block);
    SB_CHECK(it != cache_.end());
    SB_RETURN_IF_ERROR(FlushBlock(block, it->second));
  }
  // 4. Clear the header.
  std::fill(header.begin(), header.end(), 0);
  SB_RETURN_IF_ERROR(TransportWriteBlock(transport_, sb_.log_start, header));
  ++stats_.block_writes;
  return sb::OkStatus();
}

sb::Status Xv6Fs::EndOp() {
  if (!in_op_) {
    return sb::FailedPrecondition("no open transaction");
  }
  ++stats_.transactions;
  const sb::Status status = Commit();
  in_op_ = false;
  op_blocks_.clear();
  return status;
}

sb::Status Xv6Fs::RecoverLog() {
  std::vector<uint8_t> header(kBlockSize);
  SB_RETURN_IF_ERROR(TransportReadBlock(transport_, sb_.log_start, header));
  const uint32_t n = GetU32(header, 0);
  if (n == 0 || n > kLogCapacity) {
    return sb::OkStatus();  // Nothing committed (or garbage): done.
  }
  // Replay: install logged blocks to their home locations.
  std::vector<uint8_t> block(kBlockSize);
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t home = GetU32(header, 4 + i * 4);
    SB_RETURN_IF_ERROR(TransportReadBlock(transport_, sb_.log_start + 1 + i, block));
    SB_RETURN_IF_ERROR(TransportWriteBlock(transport_, home, block));
  }
  std::fill(header.begin(), header.end(), 0);
  return TransportWriteBlock(transport_, sb_.log_start, header);
}

// ---------- Format / mount ----------

sb::Status Xv6Fs::Mkfs() {
  Superblock sb;
  sb.magic = kFsMagic;
  sb.size = config_.total_blocks;
  sb.nlog = config_.nlog;
  sb.ninodes = config_.ninodes;
  sb.log_start = 1;
  sb.inode_start = sb.log_start + sb.nlog;
  const uint32_t ninode_blocks = (sb.ninodes + kInodesPerBlock - 1) / kInodesPerBlock;
  sb.bmap_start = sb.inode_start + ninode_blocks;
  const uint32_t nbmap_blocks = (sb.size + kBitsPerBlock - 1) / kBitsPerBlock;
  sb.data_start = sb.bmap_start + nbmap_blocks;
  if (sb.data_start + 16 >= sb.size) {
    return sb::InvalidArgument("device too small for this geometry");
  }

  // Zero the metadata area.
  std::vector<uint8_t> zero(kBlockSize, 0);
  for (uint32_t b = 0; b < sb.data_start; ++b) {
    SB_RETURN_IF_ERROR(TransportWriteBlock(transport_, b, zero));
  }
  // Superblock.
  std::vector<uint8_t> sbblock(kBlockSize, 0);
  std::memcpy(sbblock.data(), &sb, sizeof(sb));
  SB_RETURN_IF_ERROR(TransportWriteBlock(transport_, 0, sbblock));

  // Mark metadata blocks used in the bitmap.
  sb_ = sb;
  mounted_ = true;
  cache_.clear();
  cache_lru_.clear();
  SB_RETURN_IF_ERROR(BeginOp());
  for (uint32_t b = 0; b < sb.data_start; ++b) {
    const uint32_t bmap_block = sb.bmap_start + b / kBitsPerBlock;
    SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(bmap_block));
    buf->data[(b % kBitsPerBlock) / 8] |= static_cast<uint8_t>(1u << (b % 8));
    SB_RETURN_IF_ERROR(LogWrite(bmap_block));
  }
  // Root directory: inode 1.
  SB_ASSIGN_OR_RETURN(const uint32_t root, AllocInode(InodeType::kDir));
  if (root != kRootInum) {
    return sb::Internal("root inode is not inode 1");
  }
  SB_RETURN_IF_ERROR(EndOp());
  return sb::OkStatus();
}

sb::Status Xv6Fs::Mount() {
  std::vector<uint8_t> sbblock(kBlockSize);
  SB_RETURN_IF_ERROR(TransportReadBlock(transport_, 0, sbblock));
  std::memcpy(&sb_, sbblock.data(), sizeof(sb_));
  if (sb_.magic != kFsMagic) {
    return sb::FailedPrecondition("no file system on device");
  }
  mounted_ = true;
  cache_.clear();
  cache_lru_.clear();
  return RecoverLog();
}

// ---------- Inodes ----------

sb::StatusOr<uint32_t> Xv6Fs::AllocInode(InodeType type) {
  for (uint32_t inum = 1; inum < sb_.ninodes; ++inum) {
    DiskInode inode;
    SB_RETURN_IF_ERROR(ReadInode(inum, inode));
    if (inode.type == static_cast<uint16_t>(InodeType::kFree)) {
      inode = DiskInode{};
      inode.type = static_cast<uint16_t>(type);
      inode.nlink = 1;
      SB_RETURN_IF_ERROR(WriteInode(inum, inode));
      return inum;
    }
  }
  return sb::ResourceExhausted("out of inodes");
}

sb::Status Xv6Fs::ReadInode(uint32_t inum, DiskInode& out) {
  if (inum == 0 || inum >= sb_.ninodes) {
    return sb::OutOfRange("bad inum");
  }
  const uint32_t block = sb_.inode_start + inum / kInodesPerBlock;
  SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(block));
  std::memcpy(&out, buf->data.data() + (inum % kInodesPerBlock) * sizeof(DiskInode),
              sizeof(DiskInode));
  return sb::OkStatus();
}

sb::Status Xv6Fs::WriteInode(uint32_t inum, const DiskInode& inode) {
  const uint32_t block = sb_.inode_start + inum / kInodesPerBlock;
  SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(block));
  std::memcpy(buf->data.data() + (inum % kInodesPerBlock) * sizeof(DiskInode), &inode,
              sizeof(DiskInode));
  return LogWrite(block);
}

sb::Status Xv6Fs::FreeInode(uint32_t inum) {
  DiskInode inode;
  SB_RETURN_IF_ERROR(ReadInode(inum, inode));
  inode.type = static_cast<uint16_t>(InodeType::kFree);
  return WriteInode(inum, inode);
}

// ---------- Free bitmap ----------

sb::StatusOr<uint32_t> Xv6Fs::AllocBlock() {
  for (uint32_t b = sb_.data_start; b < sb_.size; ++b) {
    const uint32_t bmap_block = sb_.bmap_start + b / kBitsPerBlock;
    SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(bmap_block));
    const uint32_t byte = (b % kBitsPerBlock) / 8;
    const uint8_t mask = static_cast<uint8_t>(1u << (b % 8));
    if ((buf->data[byte] & mask) == 0) {
      buf->data[byte] |= mask;
      SB_RETURN_IF_ERROR(LogWrite(bmap_block));
      // Zero the new block.
      SB_ASSIGN_OR_RETURN(Buf * data_buf, GetBlock(b));
      std::fill(data_buf->data.begin(), data_buf->data.end(), 0);
      SB_RETURN_IF_ERROR(LogWrite(b));
      return b;
    }
  }
  return sb::ResourceExhausted("out of data blocks");
}

sb::Status Xv6Fs::FreeBlock(uint32_t block) {
  const uint32_t bmap_block = sb_.bmap_start + block / kBitsPerBlock;
  SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(bmap_block));
  const uint32_t byte = (block % kBitsPerBlock) / 8;
  const uint8_t mask = static_cast<uint8_t>(1u << (block % 8));
  if ((buf->data[byte] & mask) == 0) {
    return sb::Internal("double free of block");
  }
  buf->data[byte] = static_cast<uint8_t>(buf->data[byte] & ~mask);
  return LogWrite(bmap_block);
}

sb::StatusOr<uint32_t> Xv6Fs::BlockMap(DiskInode& inode, uint32_t inum, uint32_t fbn,
                                       bool alloc) {
  auto ensure = [&](uint32_t& slot) -> sb::StatusOr<uint32_t> {
    if (slot == 0) {
      if (!alloc) {
        return sb::NotFound("hole in file");
      }
      SB_ASSIGN_OR_RETURN(slot, AllocBlock());
      SB_RETURN_IF_ERROR(WriteInode(inum, inode));
    }
    return slot;
  };
  auto ensure_indirect = [&](uint32_t table_block, uint32_t index) -> sb::StatusOr<uint32_t> {
    SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(table_block));
    uint32_t entry = GetU32(buf->data, index * 4);
    if (entry == 0) {
      if (!alloc) {
        return sb::NotFound("hole in file (indirect)");
      }
      SB_ASSIGN_OR_RETURN(entry, AllocBlock());
      SB_ASSIGN_OR_RETURN(buf, GetBlock(table_block));  // May have been evicted.
      PutU32(buf->data, index * 4, entry);
      SB_RETURN_IF_ERROR(LogWrite(table_block));
    }
    return entry;
  };

  if (fbn < kNumDirect) {
    return ensure(inode.addrs[fbn]);
  }
  fbn -= kNumDirect;
  if (fbn < kPtrsPerBlock) {
    SB_ASSIGN_OR_RETURN(const uint32_t indirect, ensure(inode.addrs[kNumDirect]));
    return ensure_indirect(indirect, fbn);
  }
  fbn -= kPtrsPerBlock;
  if (fbn < kPtrsPerBlock * kPtrsPerBlock) {
    SB_ASSIGN_OR_RETURN(const uint32_t dbl, ensure(inode.addrs[kNumDirect + 1]));
    SB_ASSIGN_OR_RETURN(const uint32_t mid, ensure_indirect(dbl, fbn / kPtrsPerBlock));
    return ensure_indirect(mid, fbn % kPtrsPerBlock);
  }
  return sb::OutOfRange("file too large");
}

// ---------- Read / write ----------

sb::Status Xv6Fs::WriteFile(uint32_t inum, uint32_t offset, std::span<const uint8_t> data) {
  if (!mounted_) {
    return sb::FailedPrecondition("not mounted");
  }
  const bool own_op = !in_op_;
  if (own_op) {
    SB_RETURN_IF_ERROR(BeginOp());
  }
  if (core_ != nullptr) {
    core_->AdvanceCycles(120);  // Syscall-level FS logic.
  }
  DiskInode inode;
  SB_RETURN_IF_ERROR(ReadInode(inum, inode));
  if (inode.type != static_cast<uint16_t>(InodeType::kFile) &&
      inode.type != static_cast<uint16_t>(InodeType::kDir)) {
    return sb::InvalidArgument("not a file");
  }
  uint32_t pos = offset;
  size_t done = 0;
  while (done < data.size()) {
    SB_ASSIGN_OR_RETURN(const uint32_t block, BlockMap(inode, inum, pos / kBlockSize, true));
    const uint32_t in_block = pos % kBlockSize;
    const size_t chunk = std::min<size_t>(data.size() - done, kBlockSize - in_block);
    SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(block));
    std::memcpy(buf->data.data() + in_block, data.data() + done, chunk);
    SB_RETURN_IF_ERROR(LogWrite(block));
    pos += static_cast<uint32_t>(chunk);
    done += chunk;
  }
  if (pos > inode.size) {
    inode.size = pos;
  }
  SB_RETURN_IF_ERROR(WriteInode(inum, inode));
  if (own_op) {
    SB_RETURN_IF_ERROR(EndOp());
  }
  return sb::OkStatus();
}

sb::StatusOr<uint32_t> Xv6Fs::ReadFile(uint32_t inum, uint32_t offset, std::span<uint8_t> out) {
  if (!mounted_) {
    return sb::FailedPrecondition("not mounted");
  }
  if (core_ != nullptr) {
    core_->AdvanceCycles(100);
  }
  DiskInode inode;
  SB_RETURN_IF_ERROR(ReadInode(inum, inode));
  if (offset >= inode.size) {
    return 0u;
  }
  const uint32_t to_read =
      std::min<uint32_t>(static_cast<uint32_t>(out.size()), inode.size - offset);
  uint32_t pos = offset;
  uint32_t done = 0;
  while (done < to_read) {
    auto block = BlockMap(inode, inum, pos / kBlockSize, false);
    const uint32_t in_block = pos % kBlockSize;
    const uint32_t chunk =
        std::min<uint32_t>(to_read - done, kBlockSize - in_block);
    if (block.ok()) {
      SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(*block));
      std::memcpy(out.data() + done, buf->data.data() + in_block, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);  // Hole.
    }
    pos += chunk;
    done += chunk;
  }
  return to_read;
}

sb::StatusOr<uint32_t> Xv6Fs::FileSize(uint32_t inum) {
  DiskInode inode;
  SB_RETURN_IF_ERROR(ReadInode(inum, inode));
  return inode.size;
}

sb::Status Xv6Fs::Truncate(uint32_t inum) {
  const bool own_op = !in_op_;
  if (own_op) {
    SB_RETURN_IF_ERROR(BeginOp());
  }
  DiskInode inode;
  SB_RETURN_IF_ERROR(ReadInode(inum, inode));
  for (uint32_t i = 0; i < kNumDirect; ++i) {
    if (inode.addrs[i] != 0) {
      SB_RETURN_IF_ERROR(FreeBlock(inode.addrs[i]));
      inode.addrs[i] = 0;
    }
  }
  if (inode.addrs[kNumDirect] != 0) {
    SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(inode.addrs[kNumDirect]));
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      const uint32_t entry = GetU32(buf->data, i * 4);
      if (entry != 0) {
        SB_RETURN_IF_ERROR(FreeBlock(entry));
        SB_ASSIGN_OR_RETURN(buf, GetBlock(inode.addrs[kNumDirect]));
      }
    }
    SB_RETURN_IF_ERROR(FreeBlock(inode.addrs[kNumDirect]));
    inode.addrs[kNumDirect] = 0;
  }
  if (inode.addrs[kNumDirect + 1] != 0) {
    SB_ASSIGN_OR_RETURN(Buf * dbl, GetBlock(inode.addrs[kNumDirect + 1]));
    std::vector<uint32_t> mids;
    for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
      const uint32_t mid = GetU32(dbl->data, i * 4);
      if (mid != 0) {
        mids.push_back(mid);
      }
    }
    for (const uint32_t mid : mids) {
      SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(mid));
      std::vector<uint32_t> leaves;
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        const uint32_t leaf = GetU32(buf->data, i * 4);
        if (leaf != 0) {
          leaves.push_back(leaf);
        }
      }
      for (const uint32_t leaf : leaves) {
        SB_RETURN_IF_ERROR(FreeBlock(leaf));
      }
      SB_RETURN_IF_ERROR(FreeBlock(mid));
    }
    SB_RETURN_IF_ERROR(FreeBlock(inode.addrs[kNumDirect + 1]));
    inode.addrs[kNumDirect + 1] = 0;
  }
  inode.size = 0;
  SB_RETURN_IF_ERROR(WriteInode(inum, inode));
  if (own_op) {
    SB_RETURN_IF_ERROR(EndOp());
  }
  return sb::OkStatus();
}

// ---------- Consistency check ----------

sb::Status Xv6Fs::Fsck() {
  if (!mounted_) {
    return sb::FailedPrecondition("not mounted");
  }
  // 1. Collect every block referenced by every in-use inode.
  std::unordered_map<uint32_t, uint32_t> block_owner;  // block -> inum
  std::vector<bool> inode_used(sb_.ninodes, false);
  auto claim = [&](uint32_t block, uint32_t inum) -> sb::Status {
    if (block < sb_.data_start || block >= sb_.size) {
      return sb::Internal("inode " + std::to_string(inum) + " references block " +
                          std::to_string(block) + " outside the data area");
    }
    if (auto [it, inserted] = block_owner.emplace(block, inum); !inserted) {
      return sb::Internal("block " + std::to_string(block) + " referenced by inodes " +
                          std::to_string(it->second) + " and " + std::to_string(inum));
    }
    return sb::OkStatus();
  };

  for (uint32_t inum = 1; inum < sb_.ninodes; ++inum) {
    DiskInode inode;
    SB_RETURN_IF_ERROR(ReadInode(inum, inode));
    if (inode.type == static_cast<uint16_t>(InodeType::kFree)) {
      continue;
    }
    inode_used[inum] = true;
    for (uint32_t i = 0; i < kNumDirect; ++i) {
      if (inode.addrs[i] != 0) {
        SB_RETURN_IF_ERROR(claim(inode.addrs[i], inum));
      }
    }
    auto claim_table = [&](uint32_t table, auto&& claim_entry) -> sb::Status {
      SB_RETURN_IF_ERROR(claim(table, inum));
      SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(table));
      std::vector<uint32_t> entries;
      for (uint32_t i = 0; i < kPtrsPerBlock; ++i) {
        const uint32_t entry = GetU32(buf->data, i * 4);
        if (entry != 0) {
          entries.push_back(entry);
        }
      }
      for (const uint32_t entry : entries) {
        SB_RETURN_IF_ERROR(claim_entry(entry));
      }
      return sb::OkStatus();
    };
    if (inode.addrs[kNumDirect] != 0) {
      SB_RETURN_IF_ERROR(claim_table(inode.addrs[kNumDirect],
                                     [&](uint32_t leaf) { return claim(leaf, inum); }));
    }
    if (inode.addrs[kNumDirect + 1] != 0) {
      SB_RETURN_IF_ERROR(claim_table(inode.addrs[kNumDirect + 1], [&](uint32_t mid) {
        return claim_table(mid, [&](uint32_t leaf) { return claim(leaf, inum); });
      }));
    }
  }

  // 2. Compare against the free bitmap: every claimed block must be marked,
  // and no unclaimed data block may be marked.
  for (uint32_t b = sb_.data_start; b < sb_.size; ++b) {
    const uint32_t bmap_block = sb_.bmap_start + b / kBitsPerBlock;
    SB_ASSIGN_OR_RETURN(Buf * buf, GetBlock(bmap_block));
    const bool marked = (buf->data[(b % kBitsPerBlock) / 8] >> (b % 8)) & 1;
    const bool claimed = block_owner.contains(b);
    if (claimed && !marked) {
      return sb::Internal("block " + std::to_string(b) + " in use but free in bitmap");
    }
    if (!claimed && marked) {
      return sb::Internal("block " + std::to_string(b) + " marked used but unreferenced");
    }
  }

  // 3. Directory entries point at in-use inodes (walk from the root).
  std::vector<uint32_t> stack = {kRootInum};
  std::vector<bool> visited(sb_.ninodes, false);
  while (!stack.empty()) {
    const uint32_t dir = stack.back();
    stack.pop_back();
    if (visited[dir]) {
      continue;
    }
    visited[dir] = true;
    DiskInode dino;
    SB_RETURN_IF_ERROR(ReadInode(dir, dino));
    if (dino.type != static_cast<uint16_t>(InodeType::kDir)) {
      continue;
    }
    std::vector<uint8_t> entry(kDirentSize);
    for (uint32_t off = 0; off < dino.size; off += kDirentSize) {
      SB_ASSIGN_OR_RETURN(const uint32_t n, ReadFile(dir, off, entry));
      if (n < kDirentSize) {
        break;
      }
      uint16_t inum = 0;
      std::memcpy(&inum, entry.data(), 2);
      if (inum == 0) {
        continue;
      }
      if (inum >= sb_.ninodes || !inode_used[inum]) {
        return sb::Internal("directory " + std::to_string(dir) +
                            " references dead inode " + std::to_string(inum));
      }
      stack.push_back(inum);
    }
  }
  // 4. No in-use inode is unreachable from the root.
  for (uint32_t inum = 1; inum < sb_.ninodes; ++inum) {
    if (inode_used[inum] && !visited[inum]) {
      return sb::Internal("inode " + std::to_string(inum) + " in use but unreachable");
    }
  }
  return sb::OkStatus();
}

// ---------- Directories ----------

sb::StatusOr<uint32_t> Xv6Fs::DirLookup(uint32_t dir_inum, const std::string& name) {
  DiskInode dir;
  SB_RETURN_IF_ERROR(ReadInode(dir_inum, dir));
  if (dir.type != static_cast<uint16_t>(InodeType::kDir)) {
    return sb::InvalidArgument("not a directory");
  }
  std::vector<uint8_t> entry(kDirentSize);
  for (uint32_t off = 0; off < dir.size; off += kDirentSize) {
    SB_ASSIGN_OR_RETURN(const uint32_t n, ReadFile(dir_inum, off, entry));
    if (n < kDirentSize) {
      break;
    }
    uint16_t inum = 0;
    std::memcpy(&inum, entry.data(), 2);
    if (inum == 0) {
      continue;
    }
    char ename[kDirNameLen + 1] = {};
    std::memcpy(ename, entry.data() + 2, kDirNameLen);
    if (name == ename) {
      return inum;
    }
  }
  return sb::NotFound("no such directory entry");
}

sb::Status Xv6Fs::DirLink(uint32_t dir_inum, const std::string& name, uint32_t inum) {
  if (name.empty() || name.size() > kDirNameLen) {
    return sb::InvalidArgument("bad file name");
  }
  if (DirLookup(dir_inum, name).ok()) {
    return sb::AlreadyExists("name exists");
  }
  DiskInode dir;
  SB_RETURN_IF_ERROR(ReadInode(dir_inum, dir));
  // Find a free slot.
  std::vector<uint8_t> entry(kDirentSize);
  uint32_t off = 0;
  for (; off < dir.size; off += kDirentSize) {
    SB_ASSIGN_OR_RETURN(const uint32_t n, ReadFile(dir_inum, off, entry));
    if (n < kDirentSize) {
      break;
    }
    uint16_t existing = 0;
    std::memcpy(&existing, entry.data(), 2);
    if (existing == 0) {
      break;
    }
  }
  std::fill(entry.begin(), entry.end(), 0);
  const uint16_t inum16 = static_cast<uint16_t>(inum);
  std::memcpy(entry.data(), &inum16, 2);
  std::memcpy(entry.data() + 2, name.data(), name.size());
  return WriteFile(dir_inum, off, entry);
}

sb::Status Xv6Fs::DirUnlink(uint32_t dir_inum, const std::string& name) {
  DiskInode dir;
  SB_RETURN_IF_ERROR(ReadInode(dir_inum, dir));
  std::vector<uint8_t> entry(kDirentSize);
  for (uint32_t off = 0; off < dir.size; off += kDirentSize) {
    SB_ASSIGN_OR_RETURN(const uint32_t n, ReadFile(dir_inum, off, entry));
    if (n < kDirentSize) {
      break;
    }
    uint16_t inum = 0;
    std::memcpy(&inum, entry.data(), 2);
    if (inum == 0) {
      continue;
    }
    char ename[kDirNameLen + 1] = {};
    std::memcpy(ename, entry.data() + 2, kDirNameLen);
    if (name == ename) {
      std::fill(entry.begin(), entry.end(), 0);
      return WriteFile(dir_inum, off, entry);
    }
  }
  return sb::NotFound("no such directory entry");
}

sb::StatusOr<uint32_t> Xv6Fs::ResolveParent(const std::string& path, std::string* name) {
  if (path.empty() || path[0] != '/') {
    return sb::InvalidArgument("path must be absolute");
  }
  uint32_t dir = kRootInum;
  size_t start = 1;
  while (true) {
    const size_t slash = path.find('/', start);
    if (slash == std::string::npos) {
      *name = path.substr(start);
      if (name->empty()) {
        return sb::InvalidArgument("path ends in /");
      }
      return dir;
    }
    const std::string part = path.substr(start, slash - start);
    SB_ASSIGN_OR_RETURN(dir, DirLookup(dir, part));
    start = slash + 1;
  }
}

sb::StatusOr<uint32_t> Xv6Fs::Create(const std::string& path, InodeType type) {
  const bool own_op = !in_op_;
  if (own_op) {
    SB_RETURN_IF_ERROR(BeginOp());
  }
  auto result = [&]() -> sb::StatusOr<uint32_t> {
    std::string name;
    SB_ASSIGN_OR_RETURN(const uint32_t dir, ResolveParent(path, &name));
    if (auto existing = DirLookup(dir, name); existing.ok()) {
      return sb::AlreadyExists("file exists");
    }
    SB_ASSIGN_OR_RETURN(const uint32_t inum, AllocInode(type));
    SB_RETURN_IF_ERROR(DirLink(dir, name, inum));
    return inum;
  }();
  if (own_op) {
    SB_RETURN_IF_ERROR(EndOp());
  }
  return result;
}

sb::StatusOr<uint32_t> Xv6Fs::Lookup(const std::string& path) {
  std::string name;
  SB_ASSIGN_OR_RETURN(const uint32_t dir, ResolveParent(path, &name));
  return DirLookup(dir, name);
}

sb::Status Xv6Fs::Unlink(const std::string& path) {
  const bool own_op = !in_op_;
  if (own_op) {
    SB_RETURN_IF_ERROR(BeginOp());
  }
  auto result = [&]() -> sb::Status {
    std::string name;
    SB_ASSIGN_OR_RETURN(const uint32_t dir, ResolveParent(path, &name));
    SB_ASSIGN_OR_RETURN(const uint32_t inum, DirLookup(dir, name));
    SB_RETURN_IF_ERROR(DirUnlink(dir, name));
    SB_RETURN_IF_ERROR(Truncate(inum));
    return FreeInode(inum);
  }();
  if (own_op) {
    SB_RETURN_IF_ERROR(EndOp());
  }
  return result;
}

sb::Status Xv6Fs::Rename(const std::string& from, const std::string& to) {
  const bool own_op = !in_op_;
  if (own_op) {
    SB_RETURN_IF_ERROR(BeginOp());
  }
  auto result = [&]() -> sb::Status {
    std::string from_name;
    SB_ASSIGN_OR_RETURN(const uint32_t from_dir, ResolveParent(from, &from_name));
    SB_ASSIGN_OR_RETURN(const uint32_t inum, DirLookup(from_dir, from_name));
    std::string to_name;
    SB_ASSIGN_OR_RETURN(const uint32_t to_dir, ResolveParent(to, &to_name));
    // Replace an existing target (POSIX rename semantics).
    if (auto existing = DirLookup(to_dir, to_name); existing.ok()) {
      if (*existing == inum) {
        return sb::OkStatus();  // Rename onto itself.
      }
      SB_RETURN_IF_ERROR(DirUnlink(to_dir, to_name));
      SB_RETURN_IF_ERROR(Truncate(*existing));
      SB_RETURN_IF_ERROR(FreeInode(*existing));
    }
    SB_RETURN_IF_ERROR(DirLink(to_dir, to_name, inum));
    return DirUnlink(from_dir, from_name);
  }();
  if (own_op) {
    SB_RETURN_IF_ERROR(EndOp());
  }
  return result;
}

sb::StatusOr<std::vector<std::string>> Xv6Fs::ListDir(const std::string& path) {
  uint32_t dir_inum = kRootInum;
  if (path != "/") {
    SB_ASSIGN_OR_RETURN(dir_inum, Lookup(path));
  }
  DiskInode dir;
  SB_RETURN_IF_ERROR(ReadInode(dir_inum, dir));
  if (dir.type != static_cast<uint16_t>(InodeType::kDir)) {
    return sb::InvalidArgument("not a directory");
  }
  std::vector<std::string> names;
  std::vector<uint8_t> entry(kDirentSize);
  for (uint32_t off = 0; off < dir.size; off += kDirentSize) {
    SB_ASSIGN_OR_RETURN(const uint32_t n, ReadFile(dir_inum, off, entry));
    if (n < kDirentSize) {
      break;
    }
    uint16_t inum = 0;
    std::memcpy(&inum, entry.data(), 2);
    if (inum == 0) {
      continue;
    }
    char ename[kDirNameLen + 1] = {};
    std::memcpy(ename, entry.data() + 2, kDirNameLen);
    names.emplace_back(ename);
  }
  return names;
}

}  // namespace fsys
