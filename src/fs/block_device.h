// Block devices and the block RPC protocol.
//
// The paper's storage stack is SQLite3 -> xv6fs -> RAM-disk block device,
// with each arrow an IPC hop. RamDisk is the device; BlockTransport is how
// the file system reaches it — a plain function, so the same file system
// code runs over direct calls (baseline), kernel IPC or SkyBridge.

#ifndef SRC_FS_BLOCK_DEVICE_H_
#define SRC_FS_BLOCK_DEVICE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/status.h"
#include "src/mk/kernel.h"
#include "src/mk/message.h"

namespace fsys {

inline constexpr uint32_t kBlockSize = 512;

// Block RPC message tags.
inline constexpr uint64_t kBlockRead = 1;
inline constexpr uint64_t kBlockWrite = 2;
inline constexpr uint64_t kBlockSizeQuery = 3;

// An in-memory disk. Reads and writes also touch the owning process's heap
// through the core so the traffic is charged like real buffer memory.
class RamDisk {
 public:
  // `process` / `heap_base` locate the charged backing region; they may be
  // null/0 for uncharged unit-test use.
  RamDisk(uint32_t num_blocks, mk::Process* process = nullptr, hw::Gva heap_base = 0);

  uint32_t num_blocks() const { return num_blocks_; }

  sb::Status Read(hw::Core* core, uint32_t block, std::span<uint8_t> out);
  sb::Status Write(hw::Core* core, uint32_t block, std::span<const uint8_t> in);

  // An mk::Handler speaking the block RPC protocol.
  mk::Handler MakeHandler();

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  uint32_t num_blocks_;
  mk::Process* process_;
  hw::Gva heap_base_;
  std::vector<uint8_t> data_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

// How a component issues block requests: returns the reply message.
using BlockTransport = std::function<sb::StatusOr<mk::Message>(const mk::Message&)>;

// Client-side wrappers over a BlockTransport.
sb::Status TransportReadBlock(const BlockTransport& transport, uint32_t block,
                              std::span<uint8_t> out);
sb::Status TransportWriteBlock(const BlockTransport& transport, uint32_t block,
                               std::span<const uint8_t> in);

// Encoding helpers (shared by handler and client).
mk::Message EncodeBlockRead(uint32_t block);
mk::Message EncodeBlockWrite(uint32_t block, std::span<const uint8_t> data);

}  // namespace fsys

#endif  // SRC_FS_BLOCK_DEVICE_H_
