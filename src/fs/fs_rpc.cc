#include "src/fs/fs_rpc.h"

#include <cstring>

#include "src/base/logging.h"

namespace fsys {
namespace {

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  const size_t off = buf.size();
  buf.resize(off + 4);
  std::memcpy(buf.data() + off, &v, 4);
}

uint32_t GetU32(const std::vector<uint8_t>& buf, size_t off) {
  uint32_t v = 0;
  if (off + 4 <= buf.size()) {
    std::memcpy(&v, buf.data() + off, 4);
  }
  return v;
}

}  // namespace

mk::Handler MakeFsHandler(Xv6Fs* fs, hw::Gva cache_base) {
  return [fs, cache_base](mk::CallEnv& env) -> mk::Message {
    // The big lock: serialize in virtual time across server threads.
    const uint64_t start = fs->big_lock().Acquire(env.core.cycles());
    env.core.SyncClockTo(start);
    fs->SetChargedContext(&env.core, cache_base);

    mk::Message reply(kFsError);
    const mk::Message& req = env.request;
    switch (static_cast<FsOp>(req.tag)) {
      case FsOp::kOpen: {
        const std::string path(req.data.begin(), req.data.end());
        if (auto inum = fs->Lookup(path); inum.ok()) {
          reply.tag = *inum;
        }
        break;
      }
      case FsOp::kCreate: {
        const std::string path(req.data.begin(), req.data.end());
        if (auto inum = fs->Create(path); inum.ok()) {
          reply.tag = *inum;
        } else {
          SB_LOG(kWarning) << "fs create '" << path << "': " << inum.status().ToString();
        }
        break;
      }
      case FsOp::kRead: {
        const uint32_t inum = GetU32(req.data, 0);
        const uint32_t off = GetU32(req.data, 4);
        const uint32_t len = GetU32(req.data, 8);
        if (len <= 1 << 20) {
          std::vector<uint8_t> out(len);
          if (auto n = fs->ReadFile(inum, off, out); n.ok()) {
            out.resize(*n);
            reply.tag = *n;
            reply.data = std::move(out);
          } else {
            SB_LOG(kWarning) << "fs read inum=" << inum << ": " << n.status().ToString();
          }
        }
        break;
      }
      case FsOp::kWrite: {
        const uint32_t inum = GetU32(req.data, 0);
        const uint32_t off = GetU32(req.data, 4);
        const std::span<const uint8_t> payload(req.data.data() + 8, req.data.size() - 8);
        if (req.data.size() >= 8) {
          const sb::Status ws = fs->WriteFile(inum, off, payload);
          if (ws.ok()) {
            reply.tag = 1;
          } else {
            SB_LOG(kWarning) << "fs write inum=" << inum << " off=" << off
                             << " len=" << payload.size() << ": " << ws.ToString();
          }
        }
        break;
      }
      case FsOp::kSize: {
        if (auto size = fs->FileSize(GetU32(req.data, 0)); size.ok()) {
          reply.tag = *size;
        }
        break;
      }
      case FsOp::kUnlink: {
        const std::string path(req.data.begin(), req.data.end());
        if (fs->Unlink(path).ok()) {
          reply.tag = 1;
        }
        break;
      }
      default:
        break;
    }

    fs->SetChargedContext(nullptr, 0);
    fs->big_lock().Release(env.core.cycles());
    return reply;
  };
}

sb::StatusOr<mk::Message> FsClient::Call(const mk::Message& msg) {
  ++rpcs_;
  SB_ASSIGN_OR_RETURN(mk::Message reply, transport_(msg));
  if (reply.tag == kFsError) {
    return sb::Internal("fs rpc failed (op " + std::to_string(msg.tag) + ")");
  }
  return reply;
}

sb::StatusOr<uint32_t> FsClient::Open(const std::string& path) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kOpen));
  msg.data.assign(path.begin(), path.end());
  SB_ASSIGN_OR_RETURN(const mk::Message reply, Call(msg));
  return static_cast<uint32_t>(reply.tag);
}

sb::StatusOr<uint32_t> FsClient::Create(const std::string& path) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kCreate));
  msg.data.assign(path.begin(), path.end());
  SB_ASSIGN_OR_RETURN(const mk::Message reply, Call(msg));
  return static_cast<uint32_t>(reply.tag);
}

sb::StatusOr<std::vector<uint8_t>> FsClient::Read(uint32_t inum, uint32_t offset, uint32_t len) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kRead));
  PutU32(msg.data, inum);
  PutU32(msg.data, offset);
  PutU32(msg.data, len);
  SB_ASSIGN_OR_RETURN(mk::Message reply, Call(msg));
  return std::move(reply.data);
}

sb::Status FsClient::Write(uint32_t inum, uint32_t offset, std::span<const uint8_t> data) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kWrite));
  PutU32(msg.data, inum);
  PutU32(msg.data, offset);
  msg.data.insert(msg.data.end(), data.begin(), data.end());
  return Call(msg).status();
}

sb::StatusOr<uint32_t> FsClient::Size(uint32_t inum) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kSize));
  PutU32(msg.data, inum);
  SB_ASSIGN_OR_RETURN(const mk::Message reply, Call(msg));
  return static_cast<uint32_t>(reply.tag);
}

sb::Status FsClient::Unlink(const std::string& path) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kUnlink));
  msg.data.assign(path.begin(), path.end());
  return Call(msg).status();
}

}  // namespace fsys
