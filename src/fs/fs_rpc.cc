#include "src/fs/fs_rpc.h"

#include <cstring>

#include "src/base/logging.h"

namespace fsys {
namespace {

void PutU32(std::vector<uint8_t>& buf, uint32_t v) {
  const size_t off = buf.size();
  buf.resize(off + 4);
  std::memcpy(buf.data() + off, &v, 4);
}

uint32_t GetU32(std::span<const uint8_t> buf, size_t off) {
  uint32_t v = 0;
  if (off + 4 <= buf.size()) {
    std::memcpy(&v, buf.data() + off, 4);
  }
  return v;
}

}  // namespace

mk::Handler MakeFsHandler(Xv6Fs* fs, hw::Gva cache_base) {
  return [fs, cache_base](mk::CallEnv& env) -> mk::Message {
    // The big lock: serialize in virtual time across server threads.
    const uint64_t start = fs->big_lock().Acquire(env.core.cycles());
    env.core.SyncClockTo(start);
    fs->SetChargedContext(&env.core, cache_base);

    mk::Message reply(kFsError);
    const mk::Message& req = env.request;
    const std::span<const uint8_t> p = req.payload();
    switch (static_cast<FsOp>(req.tag)) {
      case FsOp::kOpen: {
        const std::string path(p.begin(), p.end());
        if (auto inum = fs->Lookup(path); inum.ok()) {
          reply.tag = *inum;
        }
        break;
      }
      case FsOp::kCreate: {
        const std::string path(p.begin(), p.end());
        if (auto inum = fs->Create(path); inum.ok()) {
          reply.tag = *inum;
        } else {
          SB_LOG(kWarning) << "fs create '" << path << "': " << inum.status().ToString();
        }
        break;
      }
      case FsOp::kRead: {
        const uint32_t inum = GetU32(p, 0);
        const uint32_t off = GetU32(p, 4);
        const uint32_t len = GetU32(p, 8);
        if (len <= 1 << 20) {
          std::vector<uint8_t> out(len);
          if (auto n = fs->ReadFile(inum, off, out); n.ok()) {
            // Large reads land in the connection's slice when the transport
            // offers one: the bridge then skips the reply copy.
            if (!env.reply_buffer.empty() &&
                *n > env.kernel.profile().register_msg_capacity &&
                *n <= env.reply_buffer.size()) {
              std::memcpy(env.reply_buffer.data(), out.data(), *n);
              reply = mk::Message::Borrowed(
                  *n, std::span<const uint8_t>(env.reply_buffer.data(), *n));
            } else {
              out.resize(*n);
              reply.tag = *n;
              reply.data = std::move(out);
            }
          } else {
            SB_LOG(kWarning) << "fs read inum=" << inum << ": " << n.status().ToString();
          }
        }
        break;
      }
      case FsOp::kWrite: {
        if (p.size() >= 8) {
          const uint32_t inum = GetU32(p, 0);
          const uint32_t off = GetU32(p, 4);
          const std::span<const uint8_t> payload = p.subspan(8);
          const sb::Status ws = fs->WriteFile(inum, off, payload);
          if (ws.ok()) {
            reply.tag = 1;
          } else {
            SB_LOG(kWarning) << "fs write inum=" << inum << " off=" << off
                             << " len=" << payload.size() << ": " << ws.ToString();
          }
        }
        break;
      }
      case FsOp::kSize: {
        if (auto size = fs->FileSize(GetU32(p, 0)); size.ok()) {
          reply.tag = *size;
        }
        break;
      }
      case FsOp::kUnlink: {
        const std::string path(p.begin(), p.end());
        if (fs->Unlink(path).ok()) {
          reply.tag = 1;
        }
        break;
      }
      default:
        break;
    }

    fs->SetChargedContext(nullptr, 0);
    fs->big_lock().Release(env.core.cycles());
    return reply;
  };
}

sb::StatusOr<mk::Message> FsClient::Call(const mk::Message& msg) {
  ++rpcs_;
  SB_ASSIGN_OR_RETURN(mk::Message reply, transport_(msg));
  if (reply.tag == kFsError) {
    return sb::Internal("fs rpc failed (op " + std::to_string(msg.tag) + ")");
  }
  return reply;
}

sb::StatusOr<uint32_t> FsClient::Open(const std::string& path) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kOpen));
  msg.data.assign(path.begin(), path.end());
  SB_ASSIGN_OR_RETURN(const mk::Message reply, Call(msg));
  return static_cast<uint32_t>(reply.tag);
}

sb::StatusOr<uint32_t> FsClient::Create(const std::string& path) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kCreate));
  msg.data.assign(path.begin(), path.end());
  SB_ASSIGN_OR_RETURN(const mk::Message reply, Call(msg));
  return static_cast<uint32_t>(reply.tag);
}

sb::StatusOr<std::vector<uint8_t>> FsClient::Read(uint32_t inum, uint32_t offset, uint32_t len) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kRead));
  PutU32(msg.data, inum);
  PutU32(msg.data, offset);
  PutU32(msg.data, len);
  SB_ASSIGN_OR_RETURN(mk::Message reply, Call(msg));
  if (reply.borrowed()) {
    const std::span<const uint8_t> view = reply.payload();
    return std::vector<uint8_t>(view.begin(), view.end());
  }
  return std::move(reply.data);
}

sb::Status FsClient::Write(uint32_t inum, uint32_t offset, std::span<const uint8_t> data) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kWrite));
  PutU32(msg.data, inum);
  PutU32(msg.data, offset);
  msg.data.insert(msg.data.end(), data.begin(), data.end());
  return Call(msg).status();
}

sb::StatusOr<uint32_t> FsClient::Size(uint32_t inum) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kSize));
  PutU32(msg.data, inum);
  SB_ASSIGN_OR_RETURN(const mk::Message reply, Call(msg));
  return static_cast<uint32_t>(reply.tag);
}

sb::Status FsClient::Unlink(const std::string& path) {
  mk::Message msg(static_cast<uint64_t>(FsOp::kUnlink));
  msg.data.assign(path.begin(), path.end());
  return Call(msg).status();
}

}  // namespace fsys
