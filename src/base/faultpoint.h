// Deterministic, named fault-injection points.
//
// Recovery code is only as good as its test coverage, and the failure half of
// the state space never fires on its own in a simulator. SB_FAULT_POINT
// plants a named hook at each interesting failure site:
//
//   if (SB_FAULT_POINT("skybridge.call.pre_vmfunc")) { /* injected fault */ }
//
// Like SB_TRACE_EVENT, the macro is compiled in but branch-disabled: while no
// point is armed it costs one relaxed atomic load and a predictable branch —
// nothing allocates, no simulated cycles move. Tests (and benches, via the
// --faults= flag parsed by bench::JsonReporter) arm points by name with a
// trigger:
//
//   fault::SetSeed(42);
//   fault::Arm("skybridge.handler.crash", {.nth_hit = 3});     // 3rd hit fires
//   fault::Arm("skybridge.gate.reply_corrupt", {.probability = 0.05});
//
// All randomness is a per-point sb::Rng seeded from the global seed XOR a
// hash of the point name, so fire patterns depend only on (seed, per-point
// hit sequence) — never on arming order, host time, or thread scheduling.

#ifndef SRC_BASE_FAULTPOINT_H_
#define SRC_BASE_FAULTPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"

namespace sb::fault {

// When a point fires is decided per hit:
//  - nth_hit != 0: fires on exactly that (1-based) hit and never again.
//  - nth_hit == 0: fires with `probability` per hit, drawn from the point's
//    deterministic Rng.
// `max_fires` caps the total fires either way.
struct FaultSpec {
  double probability = 1.0;
  uint64_t nth_hit = 0;
  uint64_t max_fires = ~0ULL;
};

// Arms `point`; re-arming replaces the spec and resets the point's hit/fire
// counters and Rng stream.
void Arm(std::string_view point, const FaultSpec& spec = {});
void Disarm(std::string_view point);
void DisarmAll();

// Reseeds every *subsequently armed* point's Rng stream (armed points keep
// the stream they were armed with; re-arm to pick up the new seed).
void SetSeed(uint64_t seed);

struct PointStats {
  uint64_t hits = 0;   // Times execution reached the point while armed.
  uint64_t fires = 0;  // Times the point returned true.
};
// Zeroes for a point that is not armed.
PointStats StatsFor(std::string_view point);
std::vector<std::string> ArmedPoints();

// Parses and applies a comma-separated arming spec, the --faults= syntax:
//
//   seed=42,skybridge.handler.crash:n=3,skybridge.gate.reply_corrupt:p=0.05
//
// entry := "seed=" uint64
//        | point ":" ("p=" float | "n=" uint64 | "always")
//
// A `seed=` entry applies to the entries after it. Returns InvalidArgument
// (arming nothing further) on a malformed entry.
sb::Status ArmFromSpec(std::string_view spec);

namespace internal {
extern std::atomic<bool> g_faults_enabled;  // True iff >= 1 point armed.
bool ShouldFireSlow(std::string_view point);
}  // namespace internal

// Compiled in, branch-disabled: one relaxed load when nothing is armed.
inline bool FaultPointHit(std::string_view point) {
  if (internal::g_faults_enabled.load(std::memory_order_relaxed)) [[unlikely]] {
    return internal::ShouldFireSlow(point);
  }
  return false;
}

}  // namespace sb::fault

#define SB_FAULT_POINT(point) (::sb::fault::FaultPointHit(point))

#endif  // SRC_BASE_FAULTPOINT_H_
