#include "src/base/status.h"

namespace sb {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case ErrorCode::kTimeout:
      return "TIMEOUT";
    case ErrorCode::kAborted:
      return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace sb
