// Deterministic pseudo-random number generation (xoshiro256**).
//
// All randomness in the simulator and the workload generators flows through
// Rng so that every benchmark and test is exactly reproducible from a seed.

#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstdint>

#include "src/base/logging.h"

namespace sb {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedbeefcafef00dULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be positive.
  uint64_t Below(uint64_t bound) {
    SB_DCHECK(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for our bounds.
    return static_cast<uint64_t>((static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    SB_DCHECK(lo <= hi);
    return lo + Below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool OneIn(uint64_t n) { return Below(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace sb

#endif  // SRC_BASE_RNG_H_
