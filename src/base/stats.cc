#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/logging.h"

namespace sb {

void Samples::Add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

double Samples::mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double Samples::min() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  if (values_.empty()) {
    return 0.0;
  }
  return *std::max_element(values_.begin(), values_.end());
}

double Samples::stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

void Samples::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const size_t rank = static_cast<size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(uint64_t max_value) {
  size_t nbuckets = 1;
  while ((1ULL << nbuckets) < max_value && nbuckets < 63) {
    ++nbuckets;
  }
  buckets_.assign(nbuckets + 1, 0);
}

void Histogram::Add(uint64_t v) {
  size_t bucket = 0;
  while ((1ULL << bucket) < v && bucket + 1 < buckets_.size()) {
    ++bucket;
  }
  buckets_[bucket]++;
  count_++;
  sum_ += static_cast<double>(v);
}

double Histogram::mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: at least 1 so p=0 selects the smallest populated bucket
  // instead of reading an empty prefix as "bucket 0".
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count_))));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return i == 0 ? 1 : (1ULL << (i - 1)) + (1ULL << i) / 2;
    }
  }
  return 1ULL << (buckets_.size() - 1);
}

}  // namespace sb
