// A small fixed-size worker pool for data-parallel chunked work.
//
// SkyBridge uses it to fan the registration-time code-page scans out across
// host cores (the sanctioned slow path, paper Table 6); the IPC fast path
// never touches it. ParallelFor is deterministic from the caller's point of
// view: every index runs exactly once and the caller blocks until all are
// done, so callers that bucket results per index get schedule-independent
// output.

#ifndef SRC_BASE_THREAD_POOL_H_
#define SRC_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sb {

class ThreadPool {
 public:
  // A negative `num_threads` sizes the pool to the hardware concurrency
  // minus the calling thread (capped at 7 workers). A pool with zero workers
  // is valid: ParallelFor then runs everything on the caller, in order.
  explicit ThreadPool(int num_threads = -1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs fn(i) for every i in [0, n), fanning out across the workers and the
  // calling thread, and blocks until all indices have completed. Returns the
  // number of threads that executed at least one index. Safe to call from
  // multiple threads (calls are serialized).
  size_t ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  // Claims and runs indices until the job is exhausted; returns whether this
  // thread ran at least one index.
  static bool Drain(Job& job);
  void WorkerLoop();

  std::mutex submit_mu_;  // Serializes ParallelFor callers.
  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;       // Guarded by mu_.
  uint64_t job_gen_ = 0;     // Guarded by mu_.
  size_t active_ = 0;        // Workers currently draining; guarded by mu_.
  size_t participants_ = 0;  // Workers that ran >= 1 index; guarded by mu_.
  bool stop_ = false;        // Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace sb

#endif  // SRC_BASE_THREAD_POOL_H_
