// Minimal streaming logger plus CHECK macros.
//
// CHECK failures abort: they indicate programming errors (broken invariants),
// never recoverable runtime conditions.

#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string_view>

namespace sb {

enum class LogSeverity : uint8_t { kDebug = 0, kInfo, kWarning, kError, kFatal };

// Global minimum severity; messages below it are dropped.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is disabled.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

#define SB_LOG_IS_ON(severity) (::sb::LogSeverity::severity >= ::sb::MinLogSeverity())

#define SB_LOG(severity)                 \
  !SB_LOG_IS_ON(severity)                \
      ? (void)0                          \
      : ::sb::log_internal::Voidify() &  \
            ::sb::log_internal::LogMessage(::sb::LogSeverity::severity, __FILE__, __LINE__).stream()

#define SB_CHECK(cond)                                                                      \
  (cond) ? (void)0                                                                          \
         : ::sb::log_internal::Voidify() &                                                  \
               ::sb::log_internal::LogMessage(::sb::LogSeverity::kFatal, __FILE__, __LINE__) \
                   .stream()                                                                \
               << "Check failed: " #cond " "

#define SB_CHECK_EQ(a, b) SB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_NE(a, b) SB_CHECK((a) != (b))
#define SB_CHECK_LT(a, b) SB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_LE(a, b) SB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_GT(a, b) SB_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_GE(a, b) SB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define SB_DCHECK(cond) SB_CHECK(true || (cond))
#else
#define SB_DCHECK(cond) SB_CHECK(cond)
#endif

}  // namespace sb

#endif  // SRC_BASE_LOGGING_H_
