// Minimal streaming logger plus CHECK macros.
//
// CHECK failures abort: they indicate programming errors (broken invariants),
// never recoverable runtime conditions.

#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string_view>
#include <type_traits>

namespace sb {

enum class LogSeverity : uint8_t { kDebug = 0, kInfo, kWarning, kError, kFatal };

// Global minimum severity; messages below it are dropped.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

// Hook invoked (once, before abort) when an SB_CHECK fails, after the failure
// message has been written to stderr. Used to dump flight-recorder state.
// Passing nullptr clears it. Returns the previously installed hook.
using CheckFailureHook = void (*)();
CheckFailureHook SetCheckFailureHook(CheckFailureHook hook);
// The currently installed hook (nullptr if none) — for tests that need to
// save/restore or assert on the fatal-path wiring.
CheckFailureHook GetCheckFailureHook();

// Structured key=value field for grep-able logs. Streams as `key=value`, with
// string values quoted:
//   SB_LOG(kDebug) << "binding install " << sb::kv("server", id);
// Instrumentation uses the same field names as the matching trace events.
template <typename T>
struct KvPair {
  std::string_view key;
  const T& value;
};

template <typename T>
KvPair<T> kv(std::string_view key, const T& value) {
  return KvPair<T>{key, value};
}

template <typename T>
std::ostream& operator<<(std::ostream& os, const KvPair<T>& p) {
  os << p.key << '=';
  if constexpr (std::is_convertible_v<const T&, std::string_view>) {
    os << '"' << std::string_view(p.value) << '"';
  } else {
    os << p.value;
  }
  return os;
}

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is disabled.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace log_internal

#define SB_LOG_IS_ON(severity) (::sb::LogSeverity::severity >= ::sb::MinLogSeverity())

#define SB_LOG(severity)                 \
  !SB_LOG_IS_ON(severity)                \
      ? (void)0                          \
      : ::sb::log_internal::Voidify() &  \
            ::sb::log_internal::LogMessage(::sb::LogSeverity::severity, __FILE__, __LINE__).stream()

#define SB_CHECK(cond)                                                                      \
  (cond) ? (void)0                                                                          \
         : ::sb::log_internal::Voidify() &                                                  \
               ::sb::log_internal::LogMessage(::sb::LogSeverity::kFatal, __FILE__, __LINE__) \
                   .stream()                                                                \
               << "Check failed: " #cond " "

#define SB_CHECK_EQ(a, b) SB_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_NE(a, b) SB_CHECK((a) != (b))
#define SB_CHECK_LT(a, b) SB_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_LE(a, b) SB_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_GT(a, b) SB_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define SB_CHECK_GE(a, b) SB_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define SB_DCHECK(cond) SB_CHECK(true || (cond))
#else
#define SB_DCHECK(cond) SB_CHECK(cond)
#endif

}  // namespace sb

#endif  // SRC_BASE_LOGGING_H_
