// Status and StatusOr<T>: error propagation without exceptions.
//
// All fallible public APIs in this project return Status or StatusOr<T>.
// Error codes are a small fixed set modeled after common kernel error enums.

#ifndef SRC_BASE_STATUS_H_
#define SRC_BASE_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace sb {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kUnimplemented,
  kTimeout,
  kAborted,
};

// Human-readable name for an error code ("OK", "NOT_FOUND", ...).
std::string_view ErrorCodeName(ErrorCode code);

// A success-or-error value carrying an optional message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code, std::string message = "")
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such inode".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg = "") {
  return Status(ErrorCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg = "") { return Status(ErrorCode::kNotFound, std::move(msg)); }
inline Status AlreadyExists(std::string msg = "") {
  return Status(ErrorCode::kAlreadyExists, std::move(msg));
}
inline Status PermissionDenied(std::string msg = "") {
  return Status(ErrorCode::kPermissionDenied, std::move(msg));
}
inline Status OutOfRange(std::string msg = "") {
  return Status(ErrorCode::kOutOfRange, std::move(msg));
}
inline Status ResourceExhausted(std::string msg = "") {
  return Status(ErrorCode::kResourceExhausted, std::move(msg));
}
inline Status FailedPrecondition(std::string msg = "") {
  return Status(ErrorCode::kFailedPrecondition, std::move(msg));
}
inline Status Unavailable(std::string msg = "") {
  return Status(ErrorCode::kUnavailable, std::move(msg));
}
inline Status Internal(std::string msg = "") { return Status(ErrorCode::kInternal, std::move(msg)); }
inline Status Unimplemented(std::string msg = "") {
  return Status(ErrorCode::kUnimplemented, std::move(msg));
}
inline Status TimeoutError(std::string msg = "") {
  return Status(ErrorCode::kTimeout, std::move(msg));
}
inline Status Aborted(std::string msg = "") { return Status(ErrorCode::kAborted, std::move(msg)); }

// A value of type T or a Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(T value) : rep_(std::move(value)) {}         // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(rep_);
  }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

// Propagates a non-OK Status to the caller.
#define SB_RETURN_IF_ERROR(expr)        \
  do {                                  \
    ::sb::Status sb_status__ = (expr);  \
    if (!sb_status__.ok()) {            \
      return sb_status__;               \
    }                                   \
  } while (0)

#define SB_CONCAT_IMPL(a, b) a##b
#define SB_CONCAT(a, b) SB_CONCAT_IMPL(a, b)

// Assigns the value of a StatusOr expression or propagates its error.
#define SB_ASSIGN_OR_RETURN(lhs, expr)                             \
  auto SB_CONCAT(sb_statusor__, __LINE__) = (expr);                \
  if (!SB_CONCAT(sb_statusor__, __LINE__).ok()) {                  \
    return SB_CONCAT(sb_statusor__, __LINE__).status();            \
  }                                                                \
  lhs = std::move(SB_CONCAT(sb_statusor__, __LINE__)).value()

}  // namespace sb

#endif  // SRC_BASE_STATUS_H_
