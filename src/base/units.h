// Size and address unit constants.

#ifndef SRC_BASE_UNITS_H_
#define SRC_BASE_UNITS_H_

#include <cstdint>

namespace sb {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kHugePage2M = 2 * kMiB;
inline constexpr uint64_t kHugePage1G = kGiB;

inline constexpr uint64_t PageDown(uint64_t addr) { return addr & ~(kPageSize - 1); }
inline constexpr uint64_t PageUp(uint64_t addr) { return PageDown(addr + kPageSize - 1); }
inline constexpr bool IsPageAligned(uint64_t addr) { return (addr & (kPageSize - 1)) == 0; }

}  // namespace sb

#endif  // SRC_BASE_UNITS_H_
