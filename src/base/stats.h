// Small statistics helpers used by the benchmark harnesses.

#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sb {

// Accumulates samples and answers mean / min / max / percentile queries.
class Samples {
 public:
  void Add(double v);
  size_t count() const { return values_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  // p in [0, 100]; nearest-rank on the sorted samples.
  double Percentile(double p) const;

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

// Exponentially-bucketed histogram for cycle counts.
class Histogram {
 public:
  explicit Histogram(uint64_t max_value = 1ULL << 40);
  void Add(uint64_t v);
  uint64_t count() const { return count_; }
  double mean() const;
  // Approximate percentile from bucket midpoints.
  uint64_t Percentile(double p) const;

 private:
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace sb

#endif  // SRC_BASE_STATS_H_
