#include "src/base/table.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace sb {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_sep = [&]() {
    out << "+";
    for (size_t c = 0; c < header_.size(); ++c) {
      out << std::string(widths[c] + 2, '-') << "+";
    }
    out << "\n";
  };

  emit_sep();
  emit_row(header_);
  emit_sep();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_sep();
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::Fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace sb
