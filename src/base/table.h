// Console table printer: the bench harnesses use this to print rows shaped
// like the paper's tables and figure series.

#ifndef SRC_BASE_TABLE_H_
#define SRC_BASE_TABLE_H_

#include <string>
#include <vector>

namespace sb {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Adds a row; cells beyond the header width are dropped, missing cells are
  // blank.
  void AddRow(std::vector<std::string> cells);

  // Renders an aligned ASCII table.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

  // Helpers for formatting numbers in cells.
  static std::string Fixed(double v, int digits = 1);
  static std::string Int(uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sb

#endif  // SRC_BASE_TABLE_H_
