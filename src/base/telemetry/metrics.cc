#include "src/base/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace sb::telemetry {
namespace {

// Log-linear bucket index: values below kSubBuckets map exactly; above
// that, the top 4 bits after the leading bit pick one of 16 linear
// sub-buckets within the value's octave. Octaves past kMaxTrackedBits all
// collapse into the +Inf overflow bucket.
size_t BucketIndex(uint64_t v) {
  if (v < LatencyHistogram::kSubBuckets) {
    return static_cast<size_t>(v);
  }
  const size_t w = static_cast<size_t>(std::bit_width(v));  // >= 5 here.
  if (w > LatencyHistogram::kMaxTrackedBits) {
    return LatencyHistogram::kOverflowBucket;
  }
  const size_t sub = static_cast<size_t>((v >> (w - 5)) & 15);
  return LatencyHistogram::kSubBuckets * (w - 4) + sub;
}

// Representative value for a populated bucket: the midpoint of its
// [lo, lo + width) range (exact for the linear region, <= 1/32 relative
// error elsewhere). The overflow bucket has no finite representative.
uint64_t BucketRepresentative(size_t bucket) {
  if (bucket < LatencyHistogram::kSubBuckets) {
    return bucket;
  }
  if (bucket >= LatencyHistogram::kOverflowBucket) {
    return LatencyHistogram::kOverflowValue;
  }
  const size_t w = bucket / LatencyHistogram::kSubBuckets + 4;
  const uint64_t sub = bucket % LatencyHistogram::kSubBuckets;
  const uint64_t lo = (16 + sub) << (w - 5);
  return lo + (uint64_t{1} << (w - 5)) / 2;
}

void AppendJsonNumber(std::ostringstream& out, double v) {
  if (std::isfinite(v)) {
    out << v;
  } else {
    out << 0;
  }
}

}  // namespace

void LatencyHistogram::Record(uint64_t v) {
  Shard& s = shards_[ThreadShardIndex()];
  const size_t bucket = BucketIndex(v);
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = s.max.load(std::memory_order_relaxed);
  while (v > cur && !s.max.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Fold(std::array<uint64_t, kBuckets>& buckets, uint64_t& count) const {
  buckets.fill(0);
  count = 0;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      const uint64_t b = s.buckets[i].load(std::memory_order_relaxed);
      buckets[i] += b;
      count += b;
    }
  }
}

uint64_t LatencyHistogram::Count() const {
  std::array<uint64_t, kBuckets> buckets;
  uint64_t count = 0;
  Fold(buckets, count);
  return count;
}

double LatencyHistogram::Mean() const {
  uint64_t count = 0;
  uint64_t sum = 0;
  for (const Shard& s : shards_) {
    sum += s.sum.load(std::memory_order_relaxed);
    for (const auto& b : s.buckets) {
      count += b.load(std::memory_order_relaxed);
    }
  }
  if (count == 0) {
    return 0.0;
  }
  return static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t LatencyHistogram::Max() const {
  uint64_t max = 0;
  for (const Shard& s : shards_) {
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  return max;
}

uint64_t LatencyHistogram::OverflowCount() const {
  uint64_t overflow = 0;
  for (const Shard& s : shards_) {
    overflow += s.buckets[kOverflowBucket].load(std::memory_order_relaxed);
  }
  return overflow;
}

uint64_t LatencyHistogram::Percentile(double p) const {
  std::array<uint64_t, kBuckets> buckets;
  uint64_t count = 0;
  Fold(buckets, count);
  if (count == 0) {
    return 0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  // Nearest-rank over the folded buckets; rank is at least 1 so p=0 lands on
  // the smallest populated bucket instead of reading an empty prefix.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count))));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      if (i == kOverflowBucket) {
        return kOverflowValue;  // Over-range tail: +Inf, not a clamped max.
      }
      return std::min(BucketRepresentative(i), Max());
    }
  }
  return Max();
}

uint64_t LatencyHistogram::Digest() const {
  std::array<uint64_t, kBuckets> buckets;
  uint64_t count = 0;
  Fold(buckets, count);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const uint64_t b : buckets) {
    h = (h ^ b) * 0x100000001b3ULL;
  }
  return h;
}

Counter& Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>(std::string(name))).first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>(std::string(name))).first;
  }
  return *it->second;
}

LatencyHistogram& Registry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<MetricValue> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricValue> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kCounter;
    v.value = c->Value();
    out.push_back(std::move(v));
  }
  for (const auto& [name, g] : gauges_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kGauge;
    v.value = g->Value();
    out.push_back(std::move(v));
  }
  for (const auto& [name, h] : histograms_) {
    MetricValue v;
    v.name = name;
    v.kind = MetricValue::Kind::kHistogram;
    v.count = h->Count();
    v.mean = h->Mean();
    v.p50 = h->Percentile(50);
    v.p90 = h->Percentile(90);
    v.p99 = h->Percentile(99);
    v.p999 = h->Percentile(99.9);
    v.p9999 = h->Percentile(99.99);
    v.max = h->Max();
    v.overflow = h->OverflowCount();
    out.push_back(std::move(v));
  }
  return out;
}

std::string Registry::SnapshotJson() const {
  const std::vector<MetricValue> metrics = Snapshot();
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << m.name << "\":";
    if (m.kind == MetricValue::Kind::kHistogram) {
      out << "{\"count\":" << m.count << ",\"mean\":";
      AppendJsonNumber(out, m.mean);
      out << ",\"p50\":" << m.p50 << ",\"p90\":" << m.p90 << ",\"p99\":" << m.p99
          << ",\"p999\":" << m.p999 << ",\"p9999\":" << m.p9999 << ",\"max\":" << m.max
          << ",\"overflow\":" << m.overflow << "}";
    } else {
      out << m.value;
    }
  }
  out << "}";
  return out.str();
}

}  // namespace sb::telemetry
