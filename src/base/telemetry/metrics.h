// Process-wide metrics registry: named counters, gauges and log-bucketed
// latency histograms.
//
// The hot path (Counter::Add, LatencyHistogram::Record) is lock-free: each
// metric keeps a small array of cache-line-padded shards and a thread writes
// only the shard its (cached) thread hash selects, with relaxed atomics.
// Readers fold the shards at snapshot time; a snapshot is therefore a
// consistent-enough view for reporting, never a linearization point.
//
// Naming convention: `layer.subsystem.name`, e.g. `skybridge.ipc.direct_calls`,
// `mk.sched.context_switches`, `vmm.ept.created`, `hw.tlb.dtlb_misses`.
//
// The registry is not a process singleton: each simulated machine owns one
// (hw::Machine::telemetry()), so two worlds in one test binary never share
// counters. "Process-wide" refers to the simulated machine's processes, all
// of which report into the machine's registry.

#ifndef SRC_BASE_TELEMETRY_METRICS_H_
#define SRC_BASE_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace sb::telemetry {

// Shard count for the per-thread striping. Threads hash onto shards, so two
// threads may share one — still race-free (atomics), just contended.
inline constexpr size_t kMetricShards = 16;

// Stable per-thread shard slot (hash of the thread id, cached thread-local).
inline size_t ThreadShardIndex() {
  thread_local const size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kMetricShards;
  return idx;
}

// Monotonically increasing count.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  void Add(uint64_t delta = 1) {
    shards_[ThreadShardIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& s : shards_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

// Point-in-time value: last write wins, or a provider callback evaluated at
// snapshot time (used to surface existing tallies, e.g. TLB miss counts).
class Gauge {
 public:
  using Provider = std::function<uint64_t()>;

  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }

  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

  // Monotonic high-water mark.
  void SetMax(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  // The provider must outlive every snapshot of the owning registry. Only
  // use it for objects with the same lifetime as the registry (e.g. a
  // machine's own cores).
  void SetProvider(Provider provider) { provider_ = std::move(provider); }

  uint64_t Value() const {
    if (provider_) {
      return provider_();
    }
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<uint64_t> value_{0};
  Provider provider_;
};

// HDR-style log-linear histogram for cycle counts: values below 16 record
// exactly; above that, each power-of-two range splits into 16 linear
// sub-buckets, so the relative error of a percentile is bounded by 1/32
// (instead of the 2x a pure power-of-two bucketing gives). Tracked range
// ends at 2^48 cycles (~ a simulated day at GHz rates); anything beyond
// lands in a distinct +Inf overflow bucket rather than silently clamping
// into the top finite bucket. Sharded like Counter.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBuckets = 16;       // Linear splits per octave.
  static constexpr size_t kMaxTrackedBits = 48;   // bit_width of the last finite octave.
  // Indices [0, 16) hold values 0..15 exactly; each octave w in [5, 48]
  // contributes 16 sub-buckets at [16*(w-4), 16*(w-3)); the final index is
  // the +Inf overflow bucket.
  static constexpr size_t kOverflowBucket = kSubBuckets * (kMaxTrackedBits - 3);
  static constexpr size_t kBuckets = kOverflowBucket + 1;
  // Percentile() result when the rank lands in the overflow bucket: a
  // sentinel, deliberately not clamped to Max(), so over-range tails are
  // visible as +Inf instead of masquerading as the largest finite sample.
  static constexpr uint64_t kOverflowValue = ~uint64_t{0};

  explicit LatencyHistogram(std::string name) : name_(std::move(name)) {}
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  const std::string& name() const { return name_; }

  void Record(uint64_t v);

  uint64_t Count() const;
  double Mean() const;
  uint64_t Max() const;
  // Samples recorded beyond the tracked range (the +Inf bucket).
  uint64_t OverflowCount() const;
  // Approximate percentile from bucket midpoints, clamped to the observed
  // max — except when the rank falls into the +Inf bucket, which returns
  // kOverflowValue. p <= 0 returns the smallest populated bucket's
  // representative; p >= 100 the largest. Returns 0 when empty.
  uint64_t Percentile(double p) const;
  // FNV-1a over the folded bucket counts: a deterministic fingerprint of the
  // full distribution (not just the summary percentiles), used by replay /
  // determinism tests to compare two runs' histograms exactly.
  uint64_t Digest() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  void Fold(std::array<uint64_t, kBuckets>& buckets, uint64_t& count) const;

  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

// One folded metric in a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t value = 0;  // Counter / gauge.
  // Histogram summary.
  uint64_t count = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t p9999 = 0;
  uint64_t max = 0;
  uint64_t overflow = 0;  // Samples in the +Inf bucket.
};

// Owns the named metrics. Get* registers on first use and returns the same
// instance thereafter (pointers are stable for the registry's lifetime);
// registration takes a lock, the returned handles' hot paths do not.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  // Folded view of every registered metric, sorted by name within each kind.
  std::vector<MetricValue> Snapshot() const;

  // JSON object mapping metric name to value (counters/gauges) or to a
  // {count, mean, p50, p90, p99, p999, p9999, max, overflow} object
  // (histograms).
  std::string SnapshotJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
};

}  // namespace sb::telemetry

#endif  // SRC_BASE_TELEMETRY_METRICS_H_
