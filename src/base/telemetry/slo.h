// Declarative latency SLOs over sliding windows (DESIGN.md section 14).
//
// A spec is a percentile bound — "p99<5000" reads "the 99th percentile of
// call latency must stay under 5000 cycles" — evaluated every `window`
// observations over the most recent `window` samples. Violations emit a
// kSloBreach trace event and bump a breach counter; every observation also
// feeds the goodput tally (an op is "good" when its own latency meets every
// spec's bound), surfaced as a gauge when a registry is bound.
//
// Grammar:   p<percentile> '<' <bound cycles> [ '@window=' <samples> ]
// Examples:  p99<5000      p99.9<20000@window=512      p50<800
//
// The monitor is owned by one measurement loop (the open-loop generator, a
// bench) and is not thread-safe: observations come from the loop that also
// reads the verdicts, like a CostBreakdown.

#ifndef SRC_BASE_TELEMETRY_SLO_H_
#define SRC_BASE_TELEMETRY_SLO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"

namespace sb::telemetry {

struct SloSpec {
  double percentile = 99.0;     // In (0, 100].
  uint64_t bound_cycles = 0;    // Exclusive upper bound for the percentile.
  uint64_t window = 1024;       // Samples per evaluation window.

  // Parses the grammar above; InvalidArgument with the offending token
  // otherwise.
  static sb::StatusOr<SloSpec> Parse(std::string_view text);
  std::string ToString() const;
};

class SloMonitor {
 public:
  explicit SloMonitor(std::vector<SloSpec> specs);

  // Surfaces live verdicts on `registry` as `<prefix>.breaches` (counter),
  // `<prefix>.goodput_ops` and `<prefix>.observed_ops` (gauges). Optional;
  // call once before observing.
  void BindRegistry(Registry& registry, const std::string& prefix);

  // Feeds one completed op. `now_cycles` timestamps any breach event this
  // observation triggers (window boundaries).
  void Observe(uint64_t latency_cycles, uint64_t now_cycles, uint32_t core = 0);

  uint64_t observed() const { return observed_; }
  // Ops whose latency met every spec's bound.
  uint64_t in_slo() const { return in_slo_; }
  // Window evaluations that violated any spec (total across specs).
  uint64_t breaches() const { return breaches_; }
  uint64_t breaches_for(size_t spec_index) const;
  const std::vector<SloSpec>& specs() const { return specs_; }

  // in_slo / observed; 1.0 before any observation (vacuously good).
  double GoodputFraction() const;
  // In-SLO ops per 1000 cycles of `elapsed_cycles` (the caller's clock).
  double GoodputPerKcycle(uint64_t elapsed_cycles) const;

 private:
  struct SpecState {
    std::vector<uint64_t> window;  // Ring of the most recent samples.
    uint64_t seen = 0;
    uint64_t breaches = 0;
  };
  void Evaluate(size_t i, uint64_t now_cycles, uint32_t core);

  std::vector<SloSpec> specs_;
  std::vector<SpecState> states_;
  uint64_t observed_ = 0;
  uint64_t in_slo_ = 0;
  uint64_t breaches_ = 0;
  Counter* breach_counter_ = nullptr;
  Gauge* goodput_gauge_ = nullptr;
  Gauge* observed_gauge_ = nullptr;
};

}  // namespace sb::telemetry

#endif  // SRC_BASE_TELEMETRY_SLO_H_
