// Fixed-capacity per-thread trace ring for typed IPC events.
//
// Each thread that emits gets its own ring (4096 records, power of two), so
// the enabled emit path is: one relaxed atomic load (the global enable flag),
// one global sequence fetch_add for total ordering, and a store into the
// thread's ring slot. When tracing is disabled — the default — TraceEmit is a
// single relaxed load and a predictable branch; it never allocates and never
// advances simulated cycles.
//
// The ring state is process-global (unlike the metrics registry): timestamps
// are whatever cycle value the caller passes, so rings from different
// simulated machines only make sense if the test traces one machine at a
// time. Tests call TraceClear() + SetTraceEnabled(true) around the section
// of interest.
//
// Export formats:
//  - TraceChromeJson(): Chrome trace_event JSON array, loadable in
//    chrome://tracing or https://ui.perfetto.dev. Simulated cycles map to
//    microseconds 1:1 (ts field), so a 396-cycle roundtrip shows as 396 "us".
//  - TraceDump(): plain-text flight recorder (newest last), also wired into
//    the SB_CHECK fatal path via InstallTraceCrashDump().

#ifndef SRC_BASE_TELEMETRY_TRACE_H_
#define SRC_BASE_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sb::telemetry {

enum class TraceEventType : uint8_t {
  kCallStart,      // DirectServerCall entered. arg0=client pid, arg1=server pid.
  kCallEnd,        // DirectServerCall returned. arg0=client pid, arg1=server pid.
  kLookupHit,      // Binding route found. arg0=client pid, arg1=server pid.
  kLookupMiss,     // No binding for the pair. arg0=client pid, arg1=server pid.
  kEptpMiss,       // Binding not resident in the EPTP list. arg0=server pid.
  kEptpReinstall,  // Binding (re)installed into an EPTP slot. arg0=server pid, arg1=slot.
  kVmfuncSwitch,   // VMFUNC EPTP switch executed. arg0=eptp slot.
  kHandlerEnter,   // Server handler invoked. arg0=server pid.
  kHandlerExit,    // Server handler returned. arg0=server pid, arg1=status.
  kTimeout,        // Handler exceeded its budget. arg0=server pid.
  kRejected,       // Call rejected (bad key / bad target). arg0=client pid, arg1=server pid.
  kSyscallEnter,   // Microkernel syscall entry. arg0=syscall nr.
  kSyscallExit,    // Microkernel syscall exit. arg0=syscall nr.
  kContextSwitch,  // Scheduler switched threads. arg0=from tid, arg1=to tid.
  kIpi,            // Inter-processor interrupt sent. arg0=target core.
  kVmcall,         // Hypercall into the Rootkernel. arg0=hypercall nr.
  kEptInstall,     // Rootkernel created/installed a binding EPT. arg0=server pid.
  kEptEvict,       // EPTP list slot evicted. arg0=server pid, arg1=slot.
  kCallAborted,    // Server crashed mid-handler; rootkernel-mediated abort.
                   //   arg0=client pid, arg1=server pid.
  kBindingRevoked,  // Binding revoked. arg0=client pid, arg1=server id.
  kStaleSlotRetry,  // Cached EPTP slot went stale pre-VMFUNC; slowpath re-arm.
                    //   arg0=server pid, arg1=attempt.
  // ---- Batch lifecycle + per-call spans (DESIGN.md section 14) ----
  // Every span event carries the 64-bit call id in arg0 (span.h allocates
  // ids; BuildSpans groups records by them).
  kBatchEnqueue,     // SubmitCall queued an entry. arg0=call id, arg1=token.
  kBatchFlushStart,  // FlushBatch crossing entered. arg0=crossing call id,
                     //   arg1=pending entries.
  kBatchFlushEnd,    // FlushBatch crossing returned. arg0=crossing call id,
                     //   arg1=completions posted.
  kBatchDrain,       // Server drained one ring entry. arg0=call id, arg1=token.
  kBatchPoll,        // PollCompletion reaped an entry. arg0=call id, arg1=token.
  kSpanArrival,      // Open-loop intended arrival (ts = intended cycle, which
                     //   may precede the issue cycle). arg0=call id, arg1=key.
  kSpanVmfunc,       // Entry VMFUNC attributed to a call. arg0=call id, arg1=slot.
  kSpanReturn,       // Return VMFUNC attributed to a call. arg0=call id, arg1=slot.
  kSloBreach,        // SLO window violated. arg0=spec index, arg1=observed cycles.
  kSlotFault,        // Routed binding not resident in the core's EPTP slot
                     //   working set; the slot-fault slow path re-installed
                     //   it (DESIGN.md section 15). arg0=ept id, arg1=slot.
};

const char* TraceEventName(TraceEventType type);

struct TraceRecord {
  uint64_t cycles = 0;  // Simulated-cycle timestamp (caller-provided).
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t seq = 0;  // Global emission order (valid while tracing enabled).
  uint32_t core = 0;
  TraceEventType type = TraceEventType::kCallStart;
};

inline constexpr size_t kTraceRingCapacity = 4096;  // Per thread; power of two.

namespace internal {
extern std::atomic<bool> g_trace_enabled;
void TraceEmitSlow(TraceEventType type, uint64_t cycles, uint32_t core, uint64_t arg0,
                   uint64_t arg1);
}  // namespace internal

// Compiled in, branch-disabled by default: one relaxed load when off.
inline void TraceEmit(TraceEventType type, uint64_t cycles, uint32_t core = 0, uint64_t arg0 = 0,
                      uint64_t arg1 = 0) {
  if (internal::g_trace_enabled.load(std::memory_order_relaxed)) [[unlikely]] {
    internal::TraceEmitSlow(type, cycles, core, arg0, arg1);
  }
}

// Like TraceEmit, but the argument expressions are not evaluated while
// tracing is disabled — use on hot paths where computing the timestamp or
// args is not free.
#define SB_TRACE_EVENT(type, ...)                                                              \
  do {                                                                                         \
    if (::sb::telemetry::internal::g_trace_enabled.load(std::memory_order_relaxed))            \
        [[unlikely]] {                                                                         \
      ::sb::telemetry::TraceEmit((type), __VA_ARGS__);                                         \
    }                                                                                          \
  } while (0)

void SetTraceEnabled(bool enabled);
bool TraceEnabled();

// All surviving records across every thread's ring, in emission (seq) order.
// Records overwritten by ring wrap-around are gone; each ring keeps the most
// recent kTraceRingCapacity events its thread emitted.
std::vector<TraceRecord> TraceSnapshot();

// Empties every ring and resets the sequence counter. Does not change the
// enabled flag.
void TraceClear();

// Chrome trace_event JSON (array-form) for the given records. Paired events
// (call start/end, handler enter/exit, syscall enter/exit) become B/E
// duration slices; everything else becomes an "i" instant.
std::string TraceChromeJson(const std::vector<TraceRecord>& records);

// Plain-text flight recorder: the last `max_records` events, oldest first.
void TraceDump(std::ostream& out, size_t max_records = 64);

// Registers an SB_CHECK-failure hook that dumps the flight recorder to
// stderr before the process aborts. Idempotent, and re-installable: if the
// hook was cleared (the fatal path self-resets it; tests may too), calling
// this again re-registers it. A different hook someone else installed is
// left alone.
void InstallTraceCrashDump();

}  // namespace sb::telemetry

#endif  // SRC_BASE_TELEMETRY_TRACE_H_
