#include "src/base/telemetry/span.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

namespace sb::telemetry {
namespace {

std::atomic<uint64_t> g_next_call_id{1};
thread_local uint64_t t_pending_call_id = 0;

// Phase a call-id-carrying record contributes to its span, or nullopt for
// record types that carry no call id (and for kBatchFlushEnd, which only
// closes the correlation window).
std::optional<SpanPhase> PhaseOf(TraceEventType type) {
  switch (type) {
    case TraceEventType::kSpanArrival:
      return SpanPhase::kArrival;
    case TraceEventType::kBatchEnqueue:
      return SpanPhase::kEnqueue;
    case TraceEventType::kBatchFlushStart:
      return SpanPhase::kFlush;
    case TraceEventType::kSpanVmfunc:
      return SpanPhase::kVmfunc;
    case TraceEventType::kBatchDrain:
      return SpanPhase::kDrain;
    case TraceEventType::kSpanReturn:
      return SpanPhase::kReturn;
    case TraceEventType::kBatchPoll:
      return SpanPhase::kPoll;
    default:
      return std::nullopt;
  }
}

std::optional<uint64_t> FindU64(std::string_view line, std::string_view key) {
  const size_t pos = line.find(key);
  if (pos == std::string_view::npos) {
    return std::nullopt;
  }
  size_t i = pos + key.size();
  uint64_t v = 0;
  bool any = false;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(line[i] - '0');
    ++i;
    any = true;
  }
  if (!any) {
    return std::nullopt;
  }
  return v;
}

std::optional<TraceEventType> TypeFromName(std::string_view name) {
  static const auto* by_name = [] {
    auto* m = new std::unordered_map<std::string, TraceEventType>();
    for (int i = 0; i < 256; ++i) {
      const auto t = static_cast<TraceEventType>(i);
      const std::string n = TraceEventName(t);
      if (n == "unknown") {
        break;
      }
      m->emplace(n, t);
    }
    return m;
  }();
  auto it = by_name->find(std::string(name));
  if (it == by_name->end()) {
    return std::nullopt;
  }
  return it->second;
}

}  // namespace

uint64_t AllocCallId() { return g_next_call_id.fetch_add(1, std::memory_order_relaxed); }

void SetPendingCallId(uint64_t id) { t_pending_call_id = id; }

uint64_t TakeCallId() {
  if (t_pending_call_id != 0) {
    const uint64_t id = t_pending_call_id;
    t_pending_call_id = 0;
    return id;
  }
  return AllocCallId();
}

namespace internal {

void ResetCallIds() {
  g_next_call_id.store(1, std::memory_order_relaxed);
  t_pending_call_id = 0;
}

}  // namespace internal

std::string_view SpanPhaseName(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kArrival:
      return "arrival";
    case SpanPhase::kEnqueue:
      return "enqueue";
    case SpanPhase::kFlush:
      return "flush";
    case SpanPhase::kVmfunc:
      return "vmfunc";
    case SpanPhase::kDrain:
      return "drain";
    case SpanPhase::kReturn:
      return "return";
    case SpanPhase::kPoll:
      return "poll";
  }
  return "unknown";
}

const SpanEvent* CallSpan::Find(SpanPhase phase) const {
  for (const SpanEvent& e : events) {
    if (e.phase == phase) {
      return &e;
    }
  }
  return nullptr;
}

uint64_t CallSpan::CyclesTo(SpanPhase phase) const {
  const SpanEvent* e = Find(phase);
  if (e == nullptr || events.empty()) {
    return 0;
  }
  uint64_t first = events[0].cycles;
  for (const SpanEvent& ev : events) {
    first = std::min(first, ev.cycles);
  }
  return e->cycles - first;
}

uint64_t CallSpan::TotalCycles() const {
  if (events.empty()) {
    return 0;
  }
  uint64_t lo = events[0].cycles;
  uint64_t hi = events[0].cycles;
  for (const SpanEvent& e : events) {
    lo = std::min(lo, e.cycles);
    hi = std::max(hi, e.cycles);
  }
  return hi - lo;
}

std::vector<CallSpan> BuildSpans(const std::vector<TraceRecord>& records) {
  std::vector<TraceRecord> ordered = records;
  std::sort(ordered.begin(), ordered.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq < b.seq; });

  std::map<uint64_t, CallSpan> spans;
  // The crossing currently draining on each core: kBatchFlushStart opens the
  // window, kBatchFlushEnd closes it; kBatchDrain records inside the window
  // belong to that crossing.
  std::unordered_map<uint32_t, uint64_t> open_crossing;
  for (const TraceRecord& rec : ordered) {
    if (rec.type == TraceEventType::kBatchFlushStart) {
      open_crossing[rec.core] = rec.arg0;
    } else if (rec.type == TraceEventType::kBatchFlushEnd) {
      open_crossing[rec.core] = 0;
    }
    const std::optional<SpanPhase> phase = PhaseOf(rec.type);
    if (!phase.has_value() || rec.arg0 == 0) {
      continue;
    }
    CallSpan& span = spans[rec.arg0];
    span.call_id = rec.arg0;
    if (rec.type == TraceEventType::kBatchDrain) {
      const auto it = open_crossing.find(rec.core);
      if (it != open_crossing.end() && it->second != 0 && it->second != rec.arg0) {
        span.crossing_id = it->second;
      }
    }
    span.events.push_back(SpanEvent{*phase, rec.cycles, rec.seq, rec.core, rec.arg1, false});
  }

  // Mirror each crossing's own legs into the entry spans it drained, so one
  // batched call's tree (arrival..poll) is complete without consulting the
  // crossing span.
  for (auto& [id, span] : spans) {
    if (span.crossing_id == 0) {
      continue;
    }
    const auto cross = spans.find(span.crossing_id);
    if (cross == spans.end()) {
      continue;
    }
    for (const SpanEvent& e : cross->second.events) {
      if (e.phase == SpanPhase::kFlush || e.phase == SpanPhase::kVmfunc ||
          e.phase == SpanPhase::kReturn) {
        SpanEvent copy = e;
        copy.inherited = true;
        span.events.push_back(copy);
      }
    }
    std::sort(span.events.begin(), span.events.end(),
              [](const SpanEvent& a, const SpanEvent& b) { return a.seq < b.seq; });
  }

  std::vector<CallSpan> out;
  out.reserve(spans.size());
  for (auto& [id, span] : spans) {
    out.push_back(std::move(span));
  }
  return out;
}

std::vector<TraceRecord> ParseChromeTrace(std::string_view json) {
  std::vector<TraceRecord> out;
  if (json.empty() || json[0] != '[') {
    return out;
  }
  // The exporter writes one event object per line (records joined by ",\n");
  // walk the lines and pull each field with a flat scan — no general JSON
  // machinery for a format we emit ourselves.
  size_t start = 0;
  while (start < json.size()) {
    size_t end = json.find('\n', start);
    if (end == std::string_view::npos) {
      end = json.size();
    }
    std::string_view line = json.substr(start, end - start);
    start = end + 1;
    const size_t name_pos = line.find("\"event\":\"");
    if (name_pos == std::string_view::npos) {
      continue;
    }
    const size_t name_begin = name_pos + 9;
    const size_t name_end = line.find('"', name_begin);
    if (name_end == std::string_view::npos) {
      continue;
    }
    const std::optional<TraceEventType> type =
        TypeFromName(line.substr(name_begin, name_end - name_begin));
    const std::optional<uint64_t> ts = FindU64(line, "\"ts\":");
    const std::optional<uint64_t> tid = FindU64(line, "\"tid\":");
    const std::optional<uint64_t> seq = FindU64(line, "\"seq\":");
    const std::optional<uint64_t> arg0 = FindU64(line, "\"arg0\":");
    const std::optional<uint64_t> arg1 = FindU64(line, "\"arg1\":");
    if (!type.has_value() || !ts.has_value() || !seq.has_value()) {
      continue;
    }
    TraceRecord rec;
    rec.type = *type;
    rec.cycles = *ts;
    rec.core = static_cast<uint32_t>(tid.value_or(0));
    rec.seq = *seq;
    rec.arg0 = arg0.value_or(0);
    rec.arg1 = arg1.value_or(0);
    out.push_back(rec);
  }
  return out;
}

}  // namespace sb::telemetry
