#include "src/base/telemetry/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/base/telemetry/trace.h"

namespace sb::telemetry {
namespace {

// Nearest-rank percentile over the exact samples of one window — the window
// is small and bounded, so no bucketing error on the verdict itself.
uint64_t ExactPercentile(std::vector<uint64_t> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const size_t rank = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(clamped / 100.0 * static_cast<double>(samples.size()))));
  std::nth_element(samples.begin(), samples.begin() + (rank - 1), samples.end());
  return samples[rank - 1];
}

}  // namespace

sb::StatusOr<SloSpec> SloSpec::Parse(std::string_view text) {
  SloSpec spec;
  if (text.empty() || text[0] != 'p') {
    return sb::InvalidArgument("SLO spec must start with 'p': " + std::string(text));
  }
  const size_t lt = text.find('<');
  if (lt == std::string_view::npos || lt < 2) {
    return sb::InvalidArgument("SLO spec needs 'p<percentile> < <bound>': " + std::string(text));
  }
  const std::string pct(text.substr(1, lt - 1));
  char* pct_end = nullptr;
  spec.percentile = std::strtod(pct.c_str(), &pct_end);
  if (pct_end == pct.c_str() || *pct_end != '\0' || spec.percentile <= 0.0 ||
      spec.percentile > 100.0) {
    return sb::InvalidArgument("bad SLO percentile: " + pct);
  }
  std::string_view rest = text.substr(lt + 1);
  const size_t at = rest.find("@window=");
  std::string_view bound_text = at == std::string_view::npos ? rest : rest.substr(0, at);
  uint64_t bound = 0;
  bool any = false;
  for (const char c : bound_text) {
    if (c < '0' || c > '9') {
      return sb::InvalidArgument("bad SLO bound: " + std::string(bound_text));
    }
    bound = bound * 10 + static_cast<uint64_t>(c - '0');
    any = true;
  }
  if (!any || bound == 0) {
    return sb::InvalidArgument("SLO bound must be a positive cycle count: " + std::string(text));
  }
  spec.bound_cycles = bound;
  if (at != std::string_view::npos) {
    uint64_t window = 0;
    bool wany = false;
    for (const char c : rest.substr(at + 8)) {
      if (c < '0' || c > '9') {
        return sb::InvalidArgument("bad SLO window: " + std::string(rest.substr(at + 8)));
      }
      window = window * 10 + static_cast<uint64_t>(c - '0');
      wany = true;
    }
    if (!wany || window == 0) {
      return sb::InvalidArgument("SLO window must be positive: " + std::string(text));
    }
    spec.window = window;
  }
  return spec;
}

std::string SloSpec::ToString() const {
  char buf[96];
  // Trim "p99.000000" down to "p99" / "p99.9".
  double ip = 0;
  if (std::modf(percentile, &ip) == 0.0) {
    std::snprintf(buf, sizeof(buf), "p%.0f<%llu@window=%llu", percentile,
                  static_cast<unsigned long long>(bound_cycles),
                  static_cast<unsigned long long>(window));
  } else {
    std::snprintf(buf, sizeof(buf), "p%.4g<%llu@window=%llu", percentile,
                  static_cast<unsigned long long>(bound_cycles),
                  static_cast<unsigned long long>(window));
  }
  return buf;
}

SloMonitor::SloMonitor(std::vector<SloSpec> specs) : specs_(std::move(specs)) {
  states_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    states_[i].window.reserve(specs_[i].window);
  }
}

void SloMonitor::BindRegistry(Registry& registry, const std::string& prefix) {
  breach_counter_ = &registry.GetCounter(prefix + ".breaches");
  goodput_gauge_ = &registry.GetGauge(prefix + ".goodput_ops");
  observed_gauge_ = &registry.GetGauge(prefix + ".observed_ops");
}

void SloMonitor::Observe(uint64_t latency_cycles, uint64_t now_cycles, uint32_t core) {
  ++observed_;
  bool good = true;
  for (size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    SpecState& state = states_[i];
    if (latency_cycles >= spec.bound_cycles) {
      good = false;
    }
    if (state.window.size() < spec.window) {
      state.window.push_back(latency_cycles);
    } else {
      state.window[state.seen % spec.window] = latency_cycles;
    }
    ++state.seen;
    if (state.seen % spec.window == 0) {
      Evaluate(i, now_cycles, core);
    }
  }
  if (good) {
    ++in_slo_;
  }
  if (goodput_gauge_ != nullptr) {
    goodput_gauge_->Set(in_slo_);
    observed_gauge_->Set(observed_);
  }
}

void SloMonitor::Evaluate(size_t i, uint64_t now_cycles, uint32_t core) {
  const SloSpec& spec = specs_[i];
  SpecState& state = states_[i];
  const uint64_t observed = ExactPercentile(state.window, spec.percentile);
  if (observed < spec.bound_cycles) {
    return;
  }
  ++state.breaches;
  ++breaches_;
  if (breach_counter_ != nullptr) {
    breach_counter_->Add();
  }
  TraceEmit(TraceEventType::kSloBreach, now_cycles, core, i, observed);
}

uint64_t SloMonitor::breaches_for(size_t spec_index) const {
  return spec_index < states_.size() ? states_[spec_index].breaches : 0;
}

double SloMonitor::GoodputFraction() const {
  if (observed_ == 0) {
    return 1.0;
  }
  return static_cast<double>(in_slo_) / static_cast<double>(observed_);
}

double SloMonitor::GoodputPerKcycle(uint64_t elapsed_cycles) const {
  if (elapsed_cycles == 0) {
    return 0.0;
  }
  return static_cast<double>(in_slo_) * 1000.0 / static_cast<double>(elapsed_cycles);
}

}  // namespace sb::telemetry
