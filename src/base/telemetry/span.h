// Per-call span tracing over the typed trace ring (DESIGN.md section 14).
//
// A 64-bit call id is allocated at submission time and threaded through the
// CallContext pipeline and the batch-ring descriptors, so every trace event
// that carries one (kSpanArrival / kBatchEnqueue / kBatchFlushStart /
// kSpanVmfunc / kBatchDrain / kSpanReturn / kBatchPoll) can be grouped back
// into one span per call:
//
//   arrival -> enqueue -> flush -> vmfunc -> drain -> return -> poll
//
// Sync DirectServerCalls produce the arrival/vmfunc/return subset; batched
// calls produce the full chain, with N entry spans correlated to the ONE
// FlushBatch crossing that drained them (crossing_id). BuildSpans copies the
// crossing's flush/vmfunc/return legs into each correlated entry span
// (marked inherited), so a single batched call's tree is complete on its own.
//
// Ids come from a process-global counter that TraceClear() resets alongside
// the trace sequence — replay fingerprints (tests/stress_fault_test.cc)
// depend on both being deterministic per scenario.
//
// The id handoff is thread-local: an open-loop generator allocates the id at
// the *intended* arrival cycle, emits kSpanArrival, and parks the id with
// SetPendingCallId; the next SkyBridge submission on that thread adopts it
// via TakeCallId. Call sites that never pre-announce (every existing caller)
// just get a fresh id.

#ifndef SRC_BASE_TELEMETRY_SPAN_H_
#define SRC_BASE_TELEMETRY_SPAN_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/base/telemetry/trace.h"

namespace sb::telemetry {

// ---- Call-id allocation ----

// Next id from the process-global counter (first id is 1; 0 means "none").
uint64_t AllocCallId();

// Parks `id` for the current thread; the next TakeCallId() returns it.
void SetPendingCallId(uint64_t id);

// The parked id if one is pending, else a freshly allocated one. Clears the
// parked id either way.
uint64_t TakeCallId();

namespace internal {
// Resets the global counter (and any parked id on the calling thread).
// Called by TraceClear() so replayed scenarios allocate identical ids.
void ResetCallIds();
}  // namespace internal

// ---- Span reconstruction ----

// One phase of a call's lifecycle, in canonical order.
enum class SpanPhase : uint8_t {
  kArrival,  // Intended arrival (open-loop generator).
  kEnqueue,  // SubmitCall wrote the ring entry.
  kFlush,    // FlushBatch crossing that drained the entry.
  kVmfunc,   // Entry VMFUNC of the crossing / sync call.
  kDrain,    // Server drained the entry (handler ran inside).
  kReturn,   // Return VMFUNC back to the client view.
  kPoll,     // PollCompletion reaped the completion.
};

std::string_view SpanPhaseName(SpanPhase phase);

struct SpanEvent {
  SpanPhase phase = SpanPhase::kArrival;
  uint64_t cycles = 0;
  uint64_t seq = 0;
  uint32_t core = 0;
  uint64_t aux = 0;        // The record's arg1 (token, slot, count...).
  bool inherited = false;  // Copied from the correlated crossing's span.
};

struct CallSpan {
  uint64_t call_id = 0;
  // For a batched entry: the call id of the FlushBatch crossing that drained
  // it (N entries share one crossing). 0 for sync calls and for the crossing
  // span itself.
  uint64_t crossing_id = 0;
  std::vector<SpanEvent> events;  // seq order.

  // First event of `phase`, or nullptr.
  const SpanEvent* Find(SpanPhase phase) const;
  // Cycles from this span's earliest event to `phase` (0 when absent).
  uint64_t CyclesTo(SpanPhase phase) const;
  // End-to-end cycles: last event minus first event.
  uint64_t TotalCycles() const;
};

// Groups call-id-carrying records into spans, sorted by call id. Entry spans
// correlate to their crossing via drain containment: a kBatchDrain emitted
// between a crossing's kBatchFlushStart and kBatchFlushEnd (in seq order, on
// the crossing's core) belongs to that crossing, and the crossing's
// flush/vmfunc/return events are mirrored into the entry span as inherited.
std::vector<CallSpan> BuildSpans(const std::vector<TraceRecord>& records);

// Parses TraceChromeJson() output back into records — the round-trip the
// span acceptance test exercises (export, re-import, rebuild the tree). Only
// understands this repo's own exporter format (one event object per line,
// args carrying event/seq/arg0/arg1); returns an empty vector on anything
// else.
std::vector<TraceRecord> ParseChromeTrace(std::string_view json);

}  // namespace sb::telemetry

#endif  // SRC_BASE_TELEMETRY_SPAN_H_
