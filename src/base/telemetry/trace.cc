#include "src/base/telemetry/trace.h"

#include <algorithm>
#include <array>
#include <iostream>
#include <mutex>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/telemetry/span.h"

namespace sb::telemetry {
namespace internal {

std::atomic<bool> g_trace_enabled{false};

}  // namespace internal

namespace {

std::atomic<uint64_t> g_trace_seq{0};

struct ThreadRing {
  std::array<TraceRecord, kTraceRingCapacity> records;
  // Total records ever written; head % capacity is the next slot. Atomic so
  // snapshotting from another thread is race-free (the records themselves are
  // quiescent by the time tests snapshot, and a torn in-flight record at
  // worst yields one garbled event, never UB on the counter).
  std::atomic<uint64_t> head{0};
};

std::mutex g_rings_mu;
std::vector<ThreadRing*>& Rings() {
  static std::vector<ThreadRing*>* rings = new std::vector<ThreadRing*>();
  return *rings;
}

ThreadRing& LocalRing() {
  // Leaked on purpose: rings must outlive the thread so TraceSnapshot() can
  // read events from threads that have already exited (e.g. pool workers).
  thread_local ThreadRing* ring = [] {
    auto* r = new ThreadRing();
    std::lock_guard<std::mutex> lock(g_rings_mu);
    Rings().push_back(r);
    return r;
  }();
  return *ring;
}

bool IsBeginEvent(TraceEventType t) {
  return t == TraceEventType::kCallStart || t == TraceEventType::kHandlerEnter ||
         t == TraceEventType::kSyscallEnter;
}

bool IsEndEvent(TraceEventType t) {
  return t == TraceEventType::kCallEnd || t == TraceEventType::kHandlerExit ||
         t == TraceEventType::kSyscallExit;
}

// Slice name shared by a begin/end pair.
const char* SliceName(TraceEventType t) {
  switch (t) {
    case TraceEventType::kCallStart:
    case TraceEventType::kCallEnd:
      return "DirectServerCall";
    case TraceEventType::kHandlerEnter:
    case TraceEventType::kHandlerExit:
      return "handler";
    case TraceEventType::kSyscallEnter:
    case TraceEventType::kSyscallExit:
      return "syscall";
    default:
      return TraceEventName(t);
  }
}

}  // namespace

const char* TraceEventName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCallStart:
      return "call_start";
    case TraceEventType::kCallEnd:
      return "call_end";
    case TraceEventType::kLookupHit:
      return "lookup_hit";
    case TraceEventType::kLookupMiss:
      return "lookup_miss";
    case TraceEventType::kEptpMiss:
      return "eptp_miss";
    case TraceEventType::kEptpReinstall:
      return "eptp_reinstall";
    case TraceEventType::kVmfuncSwitch:
      return "vmfunc_switch";
    case TraceEventType::kHandlerEnter:
      return "handler_enter";
    case TraceEventType::kHandlerExit:
      return "handler_exit";
    case TraceEventType::kTimeout:
      return "timeout";
    case TraceEventType::kRejected:
      return "rejected";
    case TraceEventType::kSyscallEnter:
      return "syscall_enter";
    case TraceEventType::kSyscallExit:
      return "syscall_exit";
    case TraceEventType::kContextSwitch:
      return "context_switch";
    case TraceEventType::kIpi:
      return "ipi";
    case TraceEventType::kVmcall:
      return "vmcall";
    case TraceEventType::kEptInstall:
      return "ept_install";
    case TraceEventType::kEptEvict:
      return "ept_evict";
    case TraceEventType::kCallAborted:
      return "call_aborted";
    case TraceEventType::kBindingRevoked:
      return "binding_revoked";
    case TraceEventType::kStaleSlotRetry:
      return "stale_slot_retry";
    case TraceEventType::kBatchEnqueue:
      return "batch_enqueue";
    case TraceEventType::kBatchFlushStart:
      return "batch_flush_start";
    case TraceEventType::kBatchFlushEnd:
      return "batch_flush_end";
    case TraceEventType::kBatchDrain:
      return "batch_drain";
    case TraceEventType::kBatchPoll:
      return "batch_poll";
    case TraceEventType::kSpanArrival:
      return "span_arrival";
    case TraceEventType::kSpanVmfunc:
      return "span_vmfunc";
    case TraceEventType::kSpanReturn:
      return "span_return";
    case TraceEventType::kSloBreach:
      return "slo_breach";
    case TraceEventType::kSlotFault:
      return "slot_fault";
  }
  return "unknown";
}

namespace internal {

void TraceEmitSlow(TraceEventType type, uint64_t cycles, uint32_t core, uint64_t arg0,
                   uint64_t arg1) {
  ThreadRing& ring = LocalRing();
  const uint64_t head = ring.head.load(std::memory_order_relaxed);
  TraceRecord& rec = ring.records[head % kTraceRingCapacity];
  rec.cycles = cycles;
  rec.arg0 = arg0;
  rec.arg1 = arg1;
  rec.seq = g_trace_seq.fetch_add(1, std::memory_order_relaxed);
  rec.core = core;
  rec.type = type;
  ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace internal

void SetTraceEnabled(bool enabled) {
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool TraceEnabled() { return internal::g_trace_enabled.load(std::memory_order_relaxed); }

std::vector<TraceRecord> TraceSnapshot() {
  std::vector<TraceRecord> out;
  {
    std::lock_guard<std::mutex> lock(g_rings_mu);
    for (const ThreadRing* ring : Rings()) {
      const uint64_t head = ring->head.load(std::memory_order_acquire);
      const uint64_t count = std::min<uint64_t>(head, kTraceRingCapacity);
      for (uint64_t i = head - count; i < head; ++i) {
        out.push_back(ring->records[i % kTraceRingCapacity]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.seq < b.seq; });
  return out;
}

void TraceClear() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (ThreadRing* ring : Rings()) {
    ring->head.store(0, std::memory_order_release);
  }
  g_trace_seq.store(0, std::memory_order_relaxed);
  // Call ids restart with the sequence: a replayed scenario must allocate
  // the same ids, or trace fingerprints diverge across identical runs.
  internal::ResetCallIds();
}

std::string TraceChromeJson(const std::vector<TraceRecord>& records) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const TraceRecord& rec : records) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    const char* phase = IsBeginEvent(rec.type) ? "B" : (IsEndEvent(rec.type) ? "E" : "i");
    out << "{\"name\":\"" << SliceName(rec.type) << "\",\"ph\":\"" << phase
        << "\",\"ts\":" << rec.cycles << ",\"pid\":0,\"tid\":" << rec.core
        << ",\"args\":{\"event\":\"" << TraceEventName(rec.type) << "\",\"seq\":" << rec.seq
        << ",\"arg0\":" << rec.arg0 << ",\"arg1\":" << rec.arg1 << "}";
    if (phase[0] == 'i') {
      out << ",\"s\":\"t\"";  // Thread-scoped instant.
    }
    out << "}";
  }
  out << "]";
  return out.str();
}

void TraceDump(std::ostream& out, size_t max_records) {
  const std::vector<TraceRecord> records = TraceSnapshot();
  const size_t start = records.size() > max_records ? records.size() - max_records : 0;
  out << "--- trace flight recorder (" << (records.size() - start) << " of " << records.size()
      << " events) ---\n";
  for (size_t i = start; i < records.size(); ++i) {
    const TraceRecord& rec = records[i];
    out << "  seq=" << rec.seq << " cycles=" << rec.cycles << " core=" << rec.core << " "
        << TraceEventName(rec.type) << " arg0=" << rec.arg0 << " arg1=" << rec.arg1 << "\n";
  }
  out << "--- end trace ---" << std::endl;
}

namespace {

void TraceCrashHook() { TraceDump(std::cerr); }

}  // namespace

void InstallTraceCrashDump() {
  // Only claim the hook slot while it is free (or already ours): a custom
  // hook a test installed must not be clobbered, and after the fatal path
  // self-clears the slot — or a test resets it — the next call re-registers.
  const sb::CheckFailureHook current = sb::GetCheckFailureHook();
  if (current == nullptr) {
    sb::SetCheckFailureHook(&TraceCrashHook);
  }
}

}  // namespace sb::telemetry
