#include "src/base/thread_pool.h"

#include <algorithm>

namespace sb {

ThreadPool::ThreadPool(int num_threads) {
  int count = num_threads;
  if (count < 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    count = hc > 1 ? static_cast<int>(std::min(hc - 1, 7u)) : 0;
  }
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

bool ThreadPool::Drain(Job& job) {
  bool participated = false;
  for (;;) {
    const size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) {
      return participated;
    }
    participated = true;
    (*job.fn)(i);
    job.done.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_gen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stop_ || (job_ != nullptr && job_gen_ != seen_gen); });
      if (stop_) {
        return;
      }
      job = job_;
      seen_gen = job_gen_;
      ++active_;
    }
    const bool participated = Drain(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (participated) {
        ++participants_;
      }
    }
    done_cv_.notify_all();
  }
}

size_t ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return 0;
  }
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return 1;
  }
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Job job;
  job.fn = &fn;
  job.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_gen_;
    participants_ = 0;
  }
  wake_.notify_all();
  const bool caller_participated = Drain(job);
  size_t participants = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Retract the job so late-waking workers go back to sleep, then wait for
    // every worker that did pick it up to leave it (they may still be inside
    // Drain touching the stack-allocated Job).
    job_ = nullptr;
    done_cv_.wait(lock, [&] {
      return active_ == 0 && job.done.load(std::memory_order_acquire) == job.n;
    });
    participants = participants_ + (caller_participated ? 1 : 0);
  }
  return participants;
}

}  // namespace sb
