#include "src/base/faultpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "src/base/rng.h"

namespace sb::fault {
namespace {

struct PointState {
  FaultSpec spec;
  Rng rng;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  // Ordered map: ArmedPoints() output is independent of arming order.
  std::map<std::string, PointState, std::less<>> points;
  uint64_t seed = 0x5eedfa17ULL;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry;  // Leaked: used from atexit paths.
  return *registry;
}

// FNV-1a, so a point's Rng stream depends on its name (and the global seed)
// but never on arming order.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

namespace internal {

std::atomic<bool> g_faults_enabled{false};

bool ShouldFireSlow(std::string_view point) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end()) {
    return false;
  }
  PointState& state = it->second;
  ++state.hits;
  if (state.fires >= state.spec.max_fires) {
    return false;
  }
  bool fire = false;
  if (state.spec.nth_hit != 0) {
    fire = state.hits == state.spec.nth_hit;
  } else {
    fire = state.rng.NextDouble() < state.spec.probability;
  }
  if (fire) {
    ++state.fires;
  }
  return fire;
}

}  // namespace internal

void Arm(std::string_view point, const FaultSpec& spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  PointState state;
  state.spec = spec;
  state.rng = Rng(reg.seed ^ HashName(point));
  reg.points.insert_or_assign(std::string(point), std::move(state));
  internal::g_faults_enabled.store(true, std::memory_order_relaxed);
}

void Disarm(std::string_view point) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it != reg.points.end()) {
    reg.points.erase(it);
  }
  if (reg.points.empty()) {
    internal::g_faults_enabled.store(false, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
  internal::g_faults_enabled.store(false, std::memory_order_relaxed);
}

void SetSeed(uint64_t seed) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.seed = seed;
}

PointStats StatsFor(std::string_view point) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(point);
  if (it == reg.points.end()) {
    return {};
  }
  return {it->second.hits, it->second.fires};
}

std::vector<std::string> ArmedPoints() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<std::string> names;
  names.reserve(reg.points.size());
  for (const auto& [name, state] : reg.points) {
    names.push_back(name);
  }
  return names;
}

sb::Status ArmFromSpec(std::string_view spec) {
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = spec.size();
    }
    const std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      if (pos > spec.size()) {
        break;
      }
      continue;
    }
    if (entry.substr(0, 5) == "seed=") {
      char* end = nullptr;
      const std::string value(entry.substr(5));
      const uint64_t seed = std::strtoull(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0' || value.empty()) {
        return sb::InvalidArgument("bad fault seed: " + std::string(entry));
      }
      SetSeed(seed);
      continue;
    }
    const size_t colon = entry.rfind(':');
    if (colon == std::string_view::npos || colon == 0 || colon + 1 >= entry.size()) {
      return sb::InvalidArgument("bad fault entry (want point:trigger): " + std::string(entry));
    }
    const std::string_view point = entry.substr(0, colon);
    const std::string_view trigger = entry.substr(colon + 1);
    FaultSpec fs;
    if (trigger == "always") {
      fs.probability = 1.0;
    } else if (trigger.substr(0, 2) == "p=") {
      char* end = nullptr;
      const std::string value(trigger.substr(2));
      fs.probability = std::strtod(value.c_str(), &end);
      if (end == nullptr || *end != '\0' || value.empty() || fs.probability < 0.0 ||
          fs.probability > 1.0) {
        return sb::InvalidArgument("bad fault probability: " + std::string(entry));
      }
    } else if (trigger.substr(0, 2) == "n=") {
      char* end = nullptr;
      const std::string value(trigger.substr(2));
      fs.nth_hit = std::strtoull(value.c_str(), &end, 0);
      if (end == nullptr || *end != '\0' || value.empty() || fs.nth_hit == 0) {
        return sb::InvalidArgument("bad fault hit count: " + std::string(entry));
      }
    } else {
      return sb::InvalidArgument("bad fault trigger (want p=, n= or always): " +
                                 std::string(entry));
    }
    Arm(point, fs);
  }
  return sb::OkStatus();
}

}  // namespace sb::fault
