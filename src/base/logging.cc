#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sb {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};
std::atomic<CheckFailureHook> g_check_failure_hook{nullptr};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity.store(severity); }
LogSeverity MinLogSeverity() { return g_min_severity.load(); }

CheckFailureHook SetCheckFailureHook(CheckFailureHook hook) {
  return g_check_failure_hook.exchange(hook);
}

CheckFailureHook GetCheckFailureHook() { return g_check_failure_hook.load(); }

namespace log_internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (severity_ == LogSeverity::kFatal) {
    // Run the crash hook exactly once even if it fails a check itself.
    if (CheckFailureHook hook = g_check_failure_hook.exchange(nullptr)) {
      hook();
    }
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace sb
