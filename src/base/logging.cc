#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sb {
namespace {

std::atomic<LogSeverity> g_min_severity{LogSeverity::kInfo};

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetMinLogSeverity(LogSeverity severity) { g_min_severity.store(severity); }
LogSeverity MinLogSeverity() { return g_min_severity.load(); }

namespace log_internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (severity_ == LogSeverity::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace log_internal
}  // namespace sb
