#include "src/vmm/rootkernel.h"

#include "src/base/faultpoint.h"
#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"
#include "src/base/units.h"

namespace vmm {

Rootkernel::Rootkernel(hw::Machine& machine, const RootkernelConfig& config, hw::Hpa guest_limit)
    : machine_(&machine),
      config_(config),
      guest_limit_(guest_limit),
      frames_(guest_limit, config.reserved_bytes) {
  sb::telemetry::Registry& reg = machine.telemetry();
  metrics_.exits_cpuid = &reg.GetCounter("vmm.exits.cpuid");
  metrics_.exits_vmcall = &reg.GetCounter("vmm.exits.vmcall");
  metrics_.exits_ept_violation = &reg.GetCounter("vmm.exits.ept_violation");
  metrics_.exits_exec_violation = &reg.GetCounter("vmm.exits.exec_violation");
  metrics_.epts_created = &reg.GetCounter("vmm.ept.created");
  metrics_.identity_remaps = &reg.GetCounter("vmm.ept.identity_remaps");
  metrics_.aborts = &reg.GetCounter("vmm.aborts");
  metrics_.ept_pages = &reg.GetGauge("vmm.ept.pages");
}

Rootkernel::~Rootkernel() {
  // Detach from the machine so stale exits don't reach a dead object.
  machine_->SetVmExitHandler(nullptr);
  for (int i = 0; i < machine_->num_cores(); ++i) {
    if (machine_->core(i).in_nonroot()) {
      machine_->core(i).LeaveNonRoot();
    }
  }
}

sb::StatusOr<std::unique_ptr<Rootkernel>> Rootkernel::Boot(hw::Machine& machine,
                                                           const RootkernelConfig& config) {
  if (config.reserved_bytes >= machine.mem().size()) {
    return sb::InvalidArgument("reserved region exceeds RAM");
  }
  const hw::Hpa guest_limit = machine.mem().size() - config.reserved_bytes;
  std::unique_ptr<Rootkernel> rk(new Rootkernel(machine, config, guest_limit));

  // Build the base EPT for the Subkernel.
  SB_ASSIGN_OR_RETURN(auto base, hw::Ept::Create(machine.mem(), rk->frames_));
  if (!config.lazy_base_ept) {
    // Map every guest-visible byte eagerly so no EPT violation can occur:
    // huge pages where they fit, stepping down at the reserved-region
    // boundary. The reserved slice itself stays unmapped — the guest cannot
    // touch the Rootkernel's memory.
    hw::Gpa gpa = 0;
    while (gpa < guest_limit) {
      uint64_t size = sb::kPageSize;
      for (const uint64_t candidate : {config.base_ept_page_size, sb::kHugePage2M}) {
        if (candidate > size && (gpa % candidate) == 0 && gpa + candidate <= guest_limit) {
          size = candidate;
          break;
        }
      }
      SB_RETURN_IF_ERROR(base->Map(gpa, gpa, size, hw::kEptRwx));
      gpa += size;
    }
  }
  rk->base_ept_ = base.get();
  rk->epts_.push_back(std::move(base));

  // Install exit handling and downgrade all cores (self-virtualization).
  Rootkernel* raw = rk.get();
  machine.SetVmExitHandler([raw](hw::Core& core, const hw::VmExitInfo& info) -> uint64_t {
    return raw->HandleExit(core, info);
  });
  raw->core_eptp_.assign(static_cast<size_t>(machine.num_cores()), CoreEptpState{});
  for (int i = 0; i < machine.num_cores(); ++i) {
    machine.core(i).EnterNonRoot(raw->base_ept_, /*vpid=*/static_cast<uint16_t>(i + 1));
    // EnterNonRoot seeds slot 0 with the base EPT (id 0); mirror it.
    raw->core_eptp_[static_cast<size_t>(i)].slot_ids.assign(1, 0);
  }
  return rk;
}

hw::Ept* Rootkernel::ept(uint64_t ept_id) {
  if (ept_id >= epts_.size()) {
    return nullptr;
  }
  return epts_[ept_id].get();
}

sb::StatusOr<uint64_t> Rootkernel::CreateProcessEpt() {
  SB_ASSIGN_OR_RETURN(auto copy, base_ept_->ShallowCopy());
  epts_.push_back(std::move(copy));
  metrics_.epts_created->Add();
  metrics_.ept_pages->Set(frames_.allocated_frames());
  return epts_.size() - 1;
}

sb::StatusOr<uint64_t> Rootkernel::CreateBindingEpt(hw::Gpa client_cr3, hw::Gpa server_cr3) {
  if (SB_FAULT_POINT(kFaultBindingEptRefused)) {
    return sb::ResourceExhausted("rootkernel EPT pool exhausted (injected)");
  }
  if (!sb::IsPageAligned(client_cr3) || !sb::IsPageAligned(server_cr3)) {
    return sb::InvalidArgument("CR3 values must be page aligned");
  }
  if (client_cr3 >= guest_limit_ || server_cr3 >= guest_limit_) {
    return sb::OutOfRange("CR3 outside guest memory");
  }
  SB_ASSIGN_OR_RETURN(auto copy, base_ept_->ShallowCopy());
  // The core remap: in this (server-view) EPT, the GPA of the client's page
  // table root translates to the HPA of the server's page table root.
  SB_RETURN_IF_ERROR(copy->RemapGpaPage(client_cr3, server_cr3));
  epts_.push_back(std::move(copy));
  metrics_.epts_created->Add();
  metrics_.ept_pages->Set(frames_.allocated_frames());
  SB_TRACE_EVENT(sb::telemetry::TraceEventType::kEptInstall,
                 machine_->core(0).cycles(), 0, epts_.size() - 1);
  return epts_.size() - 1;
}

sb::Status Rootkernel::RemapIdentityPage(uint64_t ept_id, hw::Gpa identity_gpa,
                                         hw::Hpa target) {
  hw::Ept* e = ept(ept_id);
  if (e == nullptr) {
    return sb::NotFound("no such EPT");
  }
  metrics_.identity_remaps->Add();
  return e->RemapGpaPage(identity_gpa, target);
}

sb::Status Rootkernel::AddCr3Remap(uint64_t ept_id, hw::Gpa cr3_gpa, hw::Gpa target_cr3) {
  // Same refusal point as CreateBindingEpt: under binding consolidation the
  // per-client slow-path hypercall is this remap, not a fresh EPT copy.
  if (SB_FAULT_POINT(kFaultBindingEptRefused)) {
    return sb::ResourceExhausted("rootkernel EPT pool exhausted (injected)");
  }
  hw::Ept* e = ept(ept_id);
  if (e == nullptr) {
    return sb::NotFound("no such EPT");
  }
  if (ept_id == 0) {
    return sb::InvalidArgument("cannot remap CR3 pages inside the base EPT");
  }
  if (!sb::IsPageAligned(cr3_gpa) || !sb::IsPageAligned(target_cr3)) {
    return sb::InvalidArgument("CR3 values must be page aligned");
  }
  if (cr3_gpa >= guest_limit_ || target_cr3 >= guest_limit_) {
    return sb::OutOfRange("CR3 outside guest memory");
  }
  metrics_.identity_remaps->Add();
  return e->RemapGpaPage(cr3_gpa, target_cr3);
}

sb::Status Rootkernel::ProtectGpaExec(uint64_t ept_id, hw::Gpa page_gpa, bool exec) {
  hw::Ept* e = ept(ept_id);
  if (e == nullptr) {
    return sb::NotFound("no such EPT");
  }
  if (ept_id == 0) {
    return sb::InvalidArgument("cannot change exec permissions inside the base EPT");
  }
  if (!sb::IsPageAligned(page_gpa)) {
    return sb::InvalidArgument("exec-protected page must be page aligned");
  }
  if (page_gpa >= guest_limit_) {
    return sb::OutOfRange("exec-protected page outside guest memory");
  }
  return e->SetGpaPageExec(page_gpa, exec);
}

uint64_t Rootkernel::ActiveEptId(int core_id) const {
  const CoreEptpState& state = core_eptp_[static_cast<size_t>(core_id)];
  const size_t index = machine_->core(core_id).vmcs().active_index;
  if (index >= state.slot_ids.size()) {
    return kNoActiveEpt;
  }
  return state.slot_ids[index];
}

sb::Status Rootkernel::CheckInvariants() const {
  if (core_eptp_.size() != static_cast<size_t>(machine_->num_cores())) {
    return sb::Internal("per-core EPTP mirror not sized to the machine");
  }
  for (int i = 0; i < machine_->num_cores(); ++i) {
    hw::Core& core = machine_->core(i);
    if (!core.in_nonroot()) {
      continue;
    }
    const hw::Vmcs& vmcs = core.vmcs();
    const CoreEptpState& state = core_eptp_[static_cast<size_t>(i)];
    if (state.slot_ids.size() != vmcs.eptp_list.size()) {
      return sb::Internal("per-core EPTP mirror length disagrees with the VMCS");
    }
    for (size_t s = 0; s < state.slot_ids.size(); ++s) {
      const uint64_t id = state.slot_ids[s];
      const hw::Ept* e = id < epts_.size() ? epts_[id].get() : nullptr;
      if (e == nullptr || vmcs.eptp_list[s] != e) {
        return sb::Internal("per-core EPTP mirror slot disagrees with the VMCS");
      }
    }
    if (!vmcs.eptp_list.empty() && vmcs.active_index >= vmcs.eptp_list.size()) {
      return sb::Internal("active EPTP view index outside the installed list");
    }
  }
  return sb::OkStatus();
}

void Rootkernel::ResetExitCounters() {
  exits_cpuid_ = 0;
  exits_vmcall_ = 0;
  exits_ept_violation_ = 0;
  exits_exec_violation_ = 0;
  machine_->ResetExitCounters();
}

uint64_t Rootkernel::HandleExit(hw::Core& core, const hw::VmExitInfo& info) {
  switch (info.reason) {
    case hw::VmExitReason::kCpuid:
      ++exits_cpuid_;
      metrics_.exits_cpuid->Add();
      return 0;
    case hw::VmExitReason::kVmcall:
      ++exits_vmcall_;
      metrics_.exits_vmcall->Add();
      SB_TRACE_EVENT(sb::telemetry::TraceEventType::kVmcall, core.cycles(), core.id(),
                     info.qualification);
      return HandleVmcall(core, info);
    case hw::VmExitReason::kEptViolation:
      ++exits_ept_violation_;
      metrics_.exits_ept_violation->Add();
      return HandleEptViolation(core, info);
    case hw::VmExitReason::kEptExecViolation:
      ++exits_exec_violation_;
      metrics_.exits_exec_violation->Add();
      if (!exec_violation_handler_) {
        return kHypercallError;
      }
      return exec_violation_handler_(core, info.qualification);
    case hw::VmExitReason::kVmfuncInvalid:
      // A malformed VMFUNC from a guest: treated as a guest error; the
      // Rootkernel refuses to switch and resumes the guest.
      return kHypercallError;
    default:
      SB_CHECK(false) << "unhandled VM exit reason";
      return kHypercallError;
  }
}

uint64_t Rootkernel::HandleVmcall(hw::Core& core, const hw::VmExitInfo& info) {
  switch (static_cast<Hypercall>(info.qualification)) {
    case Hypercall::kCreateProcessEpt: {
      auto id = CreateProcessEpt();
      return id.ok() ? *id : kHypercallError;
    }
    case Hypercall::kCreateBindingEpt: {
      auto id = CreateBindingEpt(info.arg1, info.arg2);
      return id.ok() ? *id : kHypercallError;
    }
    case Hypercall::kRemapIdentityPage: {
      return RemapIdentityPage(info.arg1, info.arg2, info.arg3).ok() ? 0 : kHypercallError;
    }
    case Hypercall::kEptpListClear: {
      CoreEptpState& state = core_eptp_[static_cast<size_t>(core.id())];
      state.slot_ids.clear();
      ++state.list_installs;
      core.vmcs().eptp_list.clear();
      core.vmcs().active_index = 0;
      return 0;
    }
    case Hypercall::kEptpListAppend: {
      hw::Ept* e = ept(info.arg1);
      if (e == nullptr || core.vmcs().eptp_list.size() >= hw::kEptpListCapacity) {
        return kHypercallError;
      }
      CoreEptpState& state = core_eptp_[static_cast<size_t>(core.id())];
      state.slot_ids.push_back(info.arg1);
      ++state.appends;
      core.vmcs().eptp_list.push_back(e);
      return core.vmcs().eptp_list.size() - 1;
    }
    case Hypercall::kEptpListReplace: {
      const size_t slot = static_cast<size_t>(info.arg1);
      hw::Ept* e = ept(info.arg2);
      if (e == nullptr || slot >= core.vmcs().eptp_list.size() ||
          slot == core.vmcs().active_index) {
        return kHypercallError;
      }
      CoreEptpState& state = core_eptp_[static_cast<size_t>(core.id())];
      state.slot_ids[slot] = info.arg2;
      ++state.replaces;
      core.vmcs().eptp_list[slot] = e;
      return slot;
    }
    case Hypercall::kAddCr3Remap: {
      return AddCr3Remap(info.arg1, info.arg2, info.arg3).ok() ? 0 : kHypercallError;
    }
    case Hypercall::kProtectGpaExec: {
      return ProtectGpaExec(info.arg1, info.arg2, info.arg3 != 0).ok() ? 0 : kHypercallError;
    }
    case Hypercall::kAbortToView: {
      if (info.arg1 >= core.vmcs().eptp_list.size()) {
        return kHypercallError;
      }
      core.vmcs().active_index = static_cast<size_t>(info.arg1);
      ++aborts_;
      ++core_eptp_[static_cast<size_t>(core.id())].aborts;
      metrics_.aborts->Add();
      return 0;
    }
    case Hypercall::kPing:
      return kPingValue;
  }
  return kHypercallError;
}

uint64_t Rootkernel::HandleEptViolation(hw::Core& core, const hw::VmExitInfo& info) {
  if (!config_.lazy_base_ept) {
    // With the eager 1 GiB base EPT this cannot happen for guest memory.
    SB_LOG(kWarning) << "unexpected EPT violation at GPA 0x" << std::hex << info.qualification;
    return kHypercallError;
  }
  const hw::Gpa gpa = sb::PageDown(info.qualification);
  if (gpa >= guest_limit_) {
    return kHypercallError;
  }
  hw::Ept* active = core.vmcs().active_ept();
  SB_CHECK(active != nullptr);
  const sb::Status status = active->Map(gpa, gpa, sb::kPageSize, hw::kEptRwx);
  return status.ok() ? 0 : kHypercallError;
}

}  // namespace vmm
