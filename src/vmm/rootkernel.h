// The Rootkernel: SkyBridge's tiny hypervisor (paper Section 4.1).
//
// Design points reproduced from the paper:
//  * Booted *by* the Subkernel (dynamic self-virtualization, CloudVisor
//    style): Boot() reserves a small slice of host memory (100 MiB), builds
//    one base EPT that identity-maps all remaining physical memory with 1 GiB
//    huge pages, and downgrades every core to non-root mode. The guest never
//    takes an EPT violation in steady state and the 2-D walk stays short.
//  * VMCS configured so privileged instructions (CR3 writes) and external
//    interrupts do NOT cause VM exits. The only retained handlers are CPUID,
//    VMCALL (the Subkernel interface) and EPT violations.
//  * EPT management: per-process EPTs are shallow copies of the base EPT;
//    binding a client to a server copies the server EPT and remaps the GPA
//    of the client's CR3 page to the HPA of the server's CR3 page, and the
//    identity page's GPA to the server's identity frame.

#ifndef SRC_VMM_ROOTKERNEL_H_
#define SRC_VMM_ROOTKERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/status.h"
#include "src/hw/ept.h"
#include "src/hw/machine.h"

namespace vmm {

// Hypercall codes for the VMCALL interface.
enum class Hypercall : uint64_t {
  kCreateProcessEpt = 1,    // () -> ept_id
  kCreateBindingEpt = 2,    // (client_cr3_gpa, server_cr3_gpa) -> ept_id
  kRemapIdentityPage = 3,   // (ept_id, identity_gpa, target_hpa) -> 0
  kEptpListClear = 4,       // () -> 0                (current core)
  kEptpListAppend = 5,      // (ept_id) -> slot index (current core)
  kPing = 6,                // () -> kPingValue
  // Abort protocol (DESIGN.md section 10): after a server-thread crash the
  // client is stranded in the server's EPT view; the Subkernel asks the
  // Rootkernel to force the core back to the caller's entry view. The index
  // is validated against the live EPTP list exactly like a VMFUNC operand.
  kAbortToView = 7,         // (eptp index) -> 0      (current core)
  // Slot virtualization (DESIGN.md section 15): replace one EPTP-list slot
  // in place. Unlike erase+append this never reshuffles later slots, so the
  // guest's cached indices for every other slot stay valid. The active view
  // slot cannot be replaced (the guest would be translating through a view
  // that vanishes under it).
  kEptpListReplace = 8,     // (slot, ept_id) -> slot (current core)
  // Binding consolidation: remap one more client CR3 GPA inside an existing
  // binding EPT, so N clients of one server share a single EPT instead of N
  // shallow copies. Also used in reverse (target = the client's own CR3) to
  // restore the identity translation when a consolidated client is revoked.
  kAddCr3Remap = 9,         // (ept_id, cr3_gpa, target_cr3) -> 0
  // Lazy registration (DESIGN.md section 17): set or clear the execute
  // permission on one 4 KiB GPA page of an EPT. Registration leaves code
  // pages non-executable; the first instruction fetch takes an exec
  // violation and the page is scanned/rewritten on demand.
  kProtectGpaExec = 10,     // (ept_id, page_gpa, exec 0|1) -> 0
};

inline constexpr uint64_t kPingValue = 0x5b5b5b5bULL;
inline constexpr uint64_t kHypercallError = ~0ULL;

// Fault point (src/base/faultpoint.h): the Rootkernel refuses a binding-EPT
// creation, as a resource-exhausted hypervisor would. Recovery: registration
// fails cleanly with Internal and leaves no partial binding behind.
inline constexpr const char kFaultBindingEptRefused[] = "vmm.rootkernel.binding_ept_refused";

struct RootkernelConfig {
  uint64_t reserved_bytes = 100ULL * 1024 * 1024;  // Paper: 100 MB.
  // Base-EPT page size; 1 GiB per the paper. The ablation bench sets 4 KiB
  // to measure what the huge-page design buys.
  uint64_t base_ept_page_size = sb::kHugePage1G;
  // Map base-EPT pages lazily on EPT violations instead of eagerly at boot
  // (only sensible with 4 KiB pages; used by the ablation).
  bool lazy_base_ept = false;
};

class Rootkernel {
 public:
  // Self-virtualization: called (conceptually) by the Subkernel during boot.
  static sb::StatusOr<std::unique_ptr<Rootkernel>> Boot(hw::Machine& machine,
                                                        const RootkernelConfig& config = {});

  ~Rootkernel();
  Rootkernel(const Rootkernel&) = delete;
  Rootkernel& operator=(const Rootkernel&) = delete;

  hw::Machine& machine() { return *machine_; }
  hw::Ept* base_ept() { return base_ept_; }
  // The hypervisor's private frame pool (EPT pages etc.).
  hw::FrameAllocator& frames() { return frames_; }
  // First byte of host memory reserved for the Rootkernel; the Subkernel owns
  // [0, guest_limit).
  hw::Hpa guest_limit() const { return guest_limit_; }

  // ---- Direct C++ mirror of the hypercall interface (the mk layer calls
  // these through hw::Core::Vmcall so exits are charged and counted). ----
  sb::StatusOr<uint64_t> CreateProcessEpt();
  sb::StatusOr<uint64_t> CreateBindingEpt(hw::Gpa client_cr3, hw::Gpa server_cr3);
  sb::Status RemapIdentityPage(uint64_t ept_id, hw::Gpa identity_gpa, hw::Hpa target);
  sb::Status AddCr3Remap(uint64_t ept_id, hw::Gpa cr3_gpa, hw::Gpa target_cr3);
  sb::Status ProtectGpaExec(uint64_t ept_id, hw::Gpa page_gpa, bool exec);
  hw::Ept* ept(uint64_t ept_id);
  // Number of EPTs derived so far (ids are dense, 0 = base).
  size_t ept_count() const { return epts_.size(); }

  // ---- Exit statistics (Table 5) ----
  uint64_t exits_cpuid() const { return exits_cpuid_; }
  uint64_t exits_vmcall() const { return exits_vmcall_; }
  uint64_t exits_ept_violation() const { return exits_ept_violation_; }
  uint64_t exits_exec_violation() const { return exits_exec_violation_; }
  uint64_t exits_total() const {
    return exits_cpuid_ + exits_vmcall_ + exits_ept_violation_ + exits_exec_violation_;
  }
  void ResetExitCounters();

  // ---- Exec-violation delegation (lazy registration slow path) ----
  // Invoked on every kEptExecViolation exit with the faulting GPA. Returns 0
  // when the handler resolved the fault (the page is now executable and the
  // guest retries the fetch) or kHypercallError to report an unresolvable
  // fault. Unset handler == every exec violation is fatal to the access.
  using ExecViolationHandler = std::function<uint64_t(hw::Core&, hw::Gpa)>;
  void SetExecViolationHandler(ExecViolationHandler handler) {
    exec_violation_handler_ = std::move(handler);
  }

  // Rootkernel-mediated call aborts served (kAbortToView).
  uint64_t aborts() const { return aborts_; }

  // ---- Per-core EPTP-list control state (DESIGN.md section 11) ----
  // The EPTP-list VMCALL ABI is implicitly "current core"; this materializes
  // that as an explicit per-core mirror of what the Rootkernel has programmed
  // into each core's VMCS EPTP list, plus per-core install accounting. The
  // mirror is the hypervisor's own bookkeeping — CheckInvariants() proves it
  // never drifts from the hardware (VMCS) state.
  struct CoreEptpState {
    std::vector<uint64_t> slot_ids;  // EPT id per slot; mirrors vmcs().eptp_list.
    uint64_t list_installs = 0;      // kEptpListClear transitions (one per install).
    uint64_t appends = 0;            // kEptpListAppend slots programmed.
    uint64_t replaces = 0;           // kEptpListReplace in-place slot swaps.
    uint64_t aborts = 0;             // kAbortToView view restores on this core.
  };
  const CoreEptpState& core_eptp_state(int core_id) const {
    return core_eptp_[static_cast<size_t>(core_id)];
  }

  // The EPT id the core's active view translates through right now, per the
  // per-core mirror (kNoActiveEpt when the list is empty / index is out of
  // range). Tests use this to assert "the core is back in process P's own
  // view" without caring which slot P's EPT happens to occupy.
  static constexpr uint64_t kNoActiveEpt = ~0ULL;
  uint64_t ActiveEptId(int core_id) const;

  // Verifies every non-root core's mirror against the live VMCS: same
  // length, every slot id resolves to the Ept* in that VMCS slot, and the
  // active view index points inside the installed list. Returns the first
  // violation.
  sb::Status CheckInvariants() const;

  // Rough footprint accounting: the paper's Rootkernel is ~1.5 KLoC. Ours
  // reports the number of EPT table pages it holds.
  size_t ept_pages_allocated() const { return frames_.allocated_frames(); }

 private:
  Rootkernel(hw::Machine& machine, const RootkernelConfig& config, hw::Hpa guest_limit);

  uint64_t HandleExit(hw::Core& core, const hw::VmExitInfo& info);
  uint64_t HandleVmcall(hw::Core& core, const hw::VmExitInfo& info);
  uint64_t HandleEptViolation(hw::Core& core, const hw::VmExitInfo& info);

  hw::Machine* machine_;
  RootkernelConfig config_;
  hw::Hpa guest_limit_;
  hw::FrameAllocator frames_;
  hw::Ept* base_ept_ = nullptr;
  std::vector<std::unique_ptr<hw::Ept>> epts_;  // id -> EPT (0 is the base).
  std::vector<CoreEptpState> core_eptp_;  // Indexed by core id.
  uint64_t exits_cpuid_ = 0;
  uint64_t exits_vmcall_ = 0;
  uint64_t exits_ept_violation_ = 0;
  uint64_t exits_exec_violation_ = 0;
  uint64_t aborts_ = 0;
  ExecViolationHandler exec_violation_handler_;
  // Registry mirrors (vmm.*) on the machine's telemetry; plain counters and
  // a Set-at-update gauge, never providers — the Rootkernel can die before
  // the machine, and a provider lambda would dangle.
  struct Metrics {
    sb::telemetry::Counter* exits_cpuid;
    sb::telemetry::Counter* exits_vmcall;
    sb::telemetry::Counter* exits_ept_violation;
    sb::telemetry::Counter* exits_exec_violation;
    sb::telemetry::Counter* epts_created;
    sb::telemetry::Counter* identity_remaps;
    sb::telemetry::Counter* aborts;
    sb::telemetry::Gauge* ept_pages;
  };
  Metrics metrics_;
};

}  // namespace vmm

#endif  // SRC_VMM_ROOTKERNEL_H_
