#include "src/db/minisql.h"

#include <cstring>

#include "src/base/logging.h"

namespace minisql {
namespace {

constexpr uint32_t kDbMagic = 0x6d696e69;  // "mini"
constexpr size_t kNameLen = 16;
constexpr size_t kCatalogEntrySize = kNameLen + 4 + 8;  // name, root, rows.
constexpr size_t kCatalogHeader = 8;                    // magic + count.
constexpr size_t kMaxTables = (kDbPageSize - kCatalogHeader) / kCatalogEntrySize;

}  // namespace

Database::Database(fsys::FsClient* fs, uint32_t inum, Config config)
    : fs_(fs), inum_(inum), config_(config) {
  pager_ = std::make_unique<Pager>(fs_, inum_, config_.pager_cache_pages);
}

sb::StatusOr<std::unique_ptr<Database>> Database::Open(fsys::FsClient* fs,
                                                       const std::string& path,
                                                       Config config) {
  auto inum = fs->Open(path);
  bool fresh = false;
  if (!inum.ok()) {
    SB_ASSIGN_OR_RETURN(inum, fs->Create(path));
    fresh = true;
  }
  std::unique_ptr<Database> db(new Database(fs, *inum, config));
  SB_RETURN_IF_ERROR(db->pager_->Open());
  if (fresh) {
    SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page0, db->pager_->GetPage(0));
    std::fill(page0->begin(), page0->end(), 0);
    std::memcpy(page0->data(), &kDbMagic, 4);
    db->pager_->MarkDirty(0);
    SB_RETURN_IF_ERROR(db->pager_->Flush());
  }
  SB_RETURN_IF_ERROR(db->LoadCatalog());
  if (config.use_journal) {
    auto journal = fs->Open(path + "-journal");
    if (!journal.ok()) {
      SB_ASSIGN_OR_RETURN(journal, fs->Create(path + "-journal"));
    }
    db->journal_inum_ = *journal;
  }
  return db;
}

sb::Status Database::JournalBegin() {
  if (!config_.use_journal) {
    return sb::OkStatus();
  }
  // Journal header + before-image stub (SQLite writes the original pages).
  std::vector<uint8_t> blob(256, 0x4a);
  return fs_->Write(journal_inum_, 0, blob);
}

sb::Status Database::JournalEnd() {
  if (!config_.use_journal) {
    return sb::OkStatus();
  }
  // Invalidate the journal header: the commit point.
  std::vector<uint8_t> zero(16, 0);
  return fs_->Write(journal_inum_, 0, zero);
}

sb::Status Database::LoadCatalog() {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page0, pager_->GetPage(0));
  uint32_t magic = 0;
  std::memcpy(&magic, page0->data(), 4);
  if (magic != kDbMagic) {
    return sb::FailedPrecondition("not a minisql database");
  }
  uint32_t count = 0;
  std::memcpy(&count, page0->data() + 4, 4);
  if (count > kMaxTables) {
    return sb::Internal("corrupt catalog");
  }
  catalog_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    const size_t off = kCatalogHeader + i * kCatalogEntrySize;
    CatalogEntry entry;
    char name[kNameLen + 1] = {};
    std::memcpy(name, page0->data() + off, kNameLen);
    entry.name = name;
    std::memcpy(&entry.root, page0->data() + off + kNameLen, 4);
    std::memcpy(&entry.rows, page0->data() + off + kNameLen + 4, 8);
    catalog_.push_back(std::move(entry));
  }
  return sb::OkStatus();
}

sb::Status Database::StoreCatalog() {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page0, pager_->GetPage(0));
  std::fill(page0->begin(), page0->end(), 0);
  std::memcpy(page0->data(), &kDbMagic, 4);
  const uint32_t count = static_cast<uint32_t>(catalog_.size());
  std::memcpy(page0->data() + 4, &count, 4);
  for (uint32_t i = 0; i < count; ++i) {
    const size_t off = kCatalogHeader + i * kCatalogEntrySize;
    const CatalogEntry& entry = catalog_[i];
    std::memcpy(page0->data() + off, entry.name.data(),
                std::min(entry.name.size(), kNameLen));
    std::memcpy(page0->data() + off + kNameLen, &entry.root, 4);
    std::memcpy(page0->data() + off + kNameLen + 4, &entry.rows, 8);
  }
  pager_->MarkDirty(0);
  return sb::OkStatus();
}

void Database::ChargeStatement(bool write) {
  if (core_ == nullptr) {
    return;
  }
  core_->AdvanceCycles(config_.statement_cycles);
  if (heap_base_ != 0) {
    // Parser/planner working set plus a slice of the page cache's VA range.
    (void)core_->TouchData(heap_base_, 512, write);
  }
}

bool Database::RowCacheGet(uint64_t key, std::vector<uint8_t>* value) {
  auto it = row_cache_.find(key);
  if (it == row_cache_.end()) {
    return false;
  }
  row_lru_.remove(key);
  row_lru_.push_front(key);
  *value = it->second;
  if (core_ != nullptr && heap_base_ != 0) {
    (void)core_->TouchData(heap_base_ + 4096 + (key % 1024) * 64, 64, false);
  }
  return true;
}

void Database::RowCachePut(uint64_t key, std::vector<uint8_t> value) {
  if (row_cache_.size() >= config_.row_cache_entries && !row_lru_.empty()) {
    row_cache_.erase(row_lru_.back());
    row_lru_.pop_back();
  }
  row_cache_[key] = std::move(value);
  row_lru_.remove(key);
  row_lru_.push_front(key);
}

void Database::RowCacheErase(uint64_t key) {
  row_cache_.erase(key);
  row_lru_.remove(key);
}

sb::StatusOr<Table*> Database::CreateTable(const std::string& name) {
  if (name.empty() || name.size() > kNameLen) {
    return sb::InvalidArgument("bad table name");
  }
  for (const CatalogEntry& entry : catalog_) {
    if (entry.name == name) {
      return sb::AlreadyExists("table exists");
    }
  }
  if (catalog_.size() >= kMaxTables) {
    return sb::ResourceExhausted("catalog full");
  }
  SB_ASSIGN_OR_RETURN(const uint32_t root, pager_->AllocatePage());
  SB_RETURN_IF_ERROR(BTree::InitLeaf(*pager_, root));
  catalog_.push_back(CatalogEntry{name, root, 0});
  SB_RETURN_IF_ERROR(StoreCatalog());
  SB_RETURN_IF_ERROR(pager_->Flush());
  auto table = std::unique_ptr<Table>(new Table(this, catalog_.size() - 1, root));
  table->btree_ = BTree(pager_.get(), root);
  tables_.push_back(std::move(table));
  return tables_.back().get();
}

sb::StatusOr<Table*> Database::OpenTable(const std::string& name) {
  for (size_t i = 0; i < catalog_.size(); ++i) {
    if (catalog_[i].name == name) {
      auto table = std::unique_ptr<Table>(new Table(this, i, catalog_[i].root));
      table->btree_ = BTree(pager_.get(), catalog_[i].root);
      tables_.push_back(std::move(table));
      return tables_.back().get();
    }
  }
  return sb::NotFound("no such table");
}

sb::Status Table::Insert(uint64_t key, std::span<const uint8_t> value) {
  db_->ChargeStatement(true);
  SB_RETURN_IF_ERROR(db_->JournalBegin());
  SB_RETURN_IF_ERROR(btree_.Insert(key, value));
  db_->catalog_[catalog_index_].rows++;
  SB_RETURN_IF_ERROR(db_->StoreCatalog());
  SB_RETURN_IF_ERROR(db_->pager_->Flush());  // Commit (SQLite-style sync).
  SB_RETURN_IF_ERROR(db_->JournalEnd());
  db_->RowCachePut(key, std::vector<uint8_t>(value.begin(), value.end()));
  db_->stats_.inserts++;
  return sb::OkStatus();
}

sb::Status Table::Update(uint64_t key, std::span<const uint8_t> value) {
  db_->ChargeStatement(true);
  SB_RETURN_IF_ERROR(db_->JournalBegin());
  SB_RETURN_IF_ERROR(btree_.Update(key, value));
  SB_RETURN_IF_ERROR(db_->pager_->Flush());
  SB_RETURN_IF_ERROR(db_->JournalEnd());
  db_->RowCachePut(key, std::vector<uint8_t>(value.begin(), value.end()));
  db_->stats_.updates++;
  return sb::OkStatus();
}

sb::StatusOr<std::vector<uint8_t>> Table::Query(uint64_t key) {
  db_->ChargeStatement(false);
  db_->stats_.queries++;
  std::vector<uint8_t> cached;
  if (db_->RowCacheGet(key, &cached)) {
    db_->stats_.row_cache_hits++;
    return cached;
  }
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t> value, btree_.Get(key));
  db_->RowCachePut(key, value);
  return value;
}

sb::StatusOr<std::vector<BTree::Row>> Table::Scan(uint64_t lo, uint64_t hi) {
  db_->ChargeStatement(false);
  db_->stats_.queries++;
  return btree_.Scan(lo, hi);
}

sb::Status Table::Delete(uint64_t key) {
  db_->ChargeStatement(true);
  SB_RETURN_IF_ERROR(db_->JournalBegin());
  SB_RETURN_IF_ERROR(btree_.Delete(key));
  db_->catalog_[catalog_index_].rows--;
  SB_RETURN_IF_ERROR(db_->StoreCatalog());
  SB_RETURN_IF_ERROR(db_->pager_->Flush());
  SB_RETURN_IF_ERROR(db_->JournalEnd());
  db_->RowCacheErase(key);
  db_->stats_.deletes++;
  return sb::OkStatus();
}

sb::StatusOr<uint64_t> Table::RowCount() { return db_->catalog_[catalog_index_].rows; }

}  // namespace minisql
