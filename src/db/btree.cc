#include "src/db/btree.h"

#include <cstring>

#include "src/base/logging.h"

namespace minisql {
namespace {

constexpr uint8_t kLeafType = 1;
constexpr uint8_t kInternalType = 2;
constexpr size_t kHeader = 8;
// Leaf cell: key (8) + vlen (2) + value (kMaxValueSize).
constexpr size_t kCellSize = 8 + 2 + kMaxValueSize;
constexpr size_t kLeafCapacity = (kDbPageSize - kHeader) / kCellSize;
// Internal entry stream: child0 (4) then repeated [key (8), child (4)].
constexpr size_t kInternalCapacity = (kDbPageSize - kHeader - 4) / 12;

static_assert(kLeafCapacity >= 4, "leaf must hold at least 4 cells");
static_assert(kInternalCapacity >= 8, "internal must hold at least 8 keys");

uint8_t PageType(const std::vector<uint8_t>& page) { return page[0]; }
void SetPageType(std::vector<uint8_t>& page, uint8_t type) { page[0] = type; }

uint16_t NumKeys(const std::vector<uint8_t>& page) {
  uint16_t n = 0;
  std::memcpy(&n, page.data() + 1, 2);
  return n;
}
void SetNumKeys(std::vector<uint8_t>& page, uint16_t n) { std::memcpy(page.data() + 1, &n, 2); }

// ---- Leaf cells ----
size_t CellOff(size_t i) { return kHeader + i * kCellSize; }

uint64_t LeafKey(const std::vector<uint8_t>& page, size_t i) {
  uint64_t k = 0;
  std::memcpy(&k, page.data() + CellOff(i), 8);
  return k;
}
uint16_t LeafValueLen(const std::vector<uint8_t>& page, size_t i) {
  uint16_t len = 0;
  std::memcpy(&len, page.data() + CellOff(i) + 8, 2);
  return len;
}
std::span<const uint8_t> LeafValue(const std::vector<uint8_t>& page, size_t i) {
  return {page.data() + CellOff(i) + 10, LeafValueLen(page, i)};
}
void WriteLeafCell(std::vector<uint8_t>& page, size_t i, uint64_t key,
                   std::span<const uint8_t> value) {
  SB_CHECK(value.size() <= kMaxValueSize);
  std::memcpy(page.data() + CellOff(i), &key, 8);
  const uint16_t len = static_cast<uint16_t>(value.size());
  std::memcpy(page.data() + CellOff(i) + 8, &len, 2);
  std::memcpy(page.data() + CellOff(i) + 10, value.data(), value.size());
}
void CopyLeafCell(std::vector<uint8_t>& dst, size_t di, const std::vector<uint8_t>& src,
                  size_t si) {
  std::memcpy(dst.data() + CellOff(di), src.data() + CellOff(si), kCellSize);
}

// ---- Internal entries ----
uint32_t ChildAt(const std::vector<uint8_t>& page, size_t i) {
  uint32_t c = 0;
  std::memcpy(&c, page.data() + kHeader + i * 12, 4);
  return c;
}
void SetChildAt(std::vector<uint8_t>& page, size_t i, uint32_t child) {
  std::memcpy(page.data() + kHeader + i * 12, &child, 4);
}
uint64_t InternalKey(const std::vector<uint8_t>& page, size_t i) {
  uint64_t k = 0;
  std::memcpy(&k, page.data() + kHeader + i * 12 + 4, 8);
  return k;
}
void SetInternalKey(std::vector<uint8_t>& page, size_t i, uint64_t key) {
  std::memcpy(page.data() + kHeader + i * 12 + 4, &key, 8);
}

// First index whose key is >= `key` in a leaf.
size_t LeafLowerBound(const std::vector<uint8_t>& page, uint64_t key) {
  const size_t n = NumKeys(page);
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (LeafKey(page, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Child slot to descend into for `key`.
size_t InternalChildIndex(const std::vector<uint8_t>& page, uint64_t key) {
  const size_t n = NumKeys(page);
  size_t i = 0;
  while (i < n && key >= InternalKey(page, i)) {
    ++i;
  }
  return i;
}

}  // namespace

sb::Status BTree::InitLeaf(Pager& pager, uint32_t pgno) {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager.GetPage(pgno));
  std::fill(page->begin(), page->end(), 0);
  SetPageType(*page, kLeafType);
  SetNumKeys(*page, 0);
  pager.MarkDirty(pgno);
  return sb::OkStatus();
}

sb::StatusOr<std::optional<BTree::SplitResult>> BTree::InsertRec(
    uint32_t pgno, uint64_t key, std::span<const uint8_t> value) {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));

  if (PageType(*page) == kLeafType) {
    const size_t pos = LeafLowerBound(*page, key);
    const size_t n = NumKeys(*page);
    if (pos < n && LeafKey(*page, pos) == key) {
      return sb::Status(sb::ErrorCode::kAlreadyExists, "duplicate key");
    }
    if (n < kLeafCapacity) {
      for (size_t i = n; i > pos; --i) {
        CopyLeafCell(*page, i, *page, i - 1);
      }
      WriteLeafCell(*page, pos, key, value);
      SetNumKeys(*page, static_cast<uint16_t>(n + 1));
      pager_->MarkDirty(pgno);
      return std::optional<SplitResult>{};
    }
    // Split the leaf: keep the lower half here, move the upper half right.
    SB_ASSIGN_OR_RETURN(const uint32_t right_pgno, pager_->AllocatePage());
    // AllocatePage may relocate cache entries; refetch.
    SB_ASSIGN_OR_RETURN(page, pager_->GetPage(pgno));
    SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* right, pager_->GetPage(right_pgno));
    SB_ASSIGN_OR_RETURN(page, pager_->GetPage(pgno));

    std::fill(right->begin(), right->end(), 0);
    SetPageType(*right, kLeafType);
    const size_t mid = (n + 1) / 2;
    for (size_t i = mid; i < n; ++i) {
      CopyLeafCell(*right, i - mid, *page, i);
    }
    SetNumKeys(*right, static_cast<uint16_t>(n - mid));
    SetNumKeys(*page, static_cast<uint16_t>(mid));
    pager_->MarkDirty(pgno);
    pager_->MarkDirty(right_pgno);

    // Insert into the proper half.
    const uint64_t separator = LeafKey(*right, 0);
    const uint32_t target = key < separator ? pgno : right_pgno;
    SB_ASSIGN_OR_RETURN(auto inner, InsertRec(target, key, value));
    SB_CHECK(!inner.has_value()) << "post-split leaf insert cannot split again";
    return std::optional<SplitResult>{SplitResult{separator, right_pgno}};
  }

  // Internal node.
  const size_t slot = InternalChildIndex(*page, key);
  const uint32_t child = ChildAt(*page, slot);
  SB_ASSIGN_OR_RETURN(auto split, InsertRec(child, key, value));
  if (!split.has_value()) {
    return std::optional<SplitResult>{};
  }
  SB_ASSIGN_OR_RETURN(page, pager_->GetPage(pgno));  // Refetch after descent.
  const size_t n = NumKeys(*page);
  if (n < kInternalCapacity) {
    // Shift entries right of `slot` and insert (separator, right child).
    for (size_t i = n; i > slot; --i) {
      SetInternalKey(*page, i, InternalKey(*page, i - 1));
      SetChildAt(*page, i + 1, ChildAt(*page, i));
    }
    SetInternalKey(*page, slot, split->separator);
    SetChildAt(*page, slot + 1, split->right_pgno);
    SetNumKeys(*page, static_cast<uint16_t>(n + 1));
    pager_->MarkDirty(pgno);
    return std::optional<SplitResult>{};
  }

  // Split the internal node. Gather entries (including the new one) first.
  std::vector<uint32_t> children;
  std::vector<uint64_t> keys;
  children.reserve(n + 2);
  keys.reserve(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    children.push_back(ChildAt(*page, i));
    if (i < n) {
      keys.push_back(InternalKey(*page, i));
    }
  }
  // Insert the new entry at `slot`.
  keys.insert(keys.begin() + static_cast<long>(slot), split->separator);
  children.insert(children.begin() + static_cast<long>(slot) + 1, split->right_pgno);
  SB_ASSIGN_OR_RETURN(const uint32_t right_pgno, pager_->AllocatePage());
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* right, pager_->GetPage(right_pgno));
  SB_ASSIGN_OR_RETURN(page, pager_->GetPage(pgno));
  std::fill(right->begin(), right->end(), 0);
  SetPageType(*right, kInternalType);

  const size_t total_keys = keys.size();  // == n + 1
  const size_t left_keys = total_keys / 2;
  const uint64_t up_key = keys[left_keys];

  // Left keeps keys [0, left_keys) and children [0, left_keys].
  SetNumKeys(*page, static_cast<uint16_t>(left_keys));
  for (size_t i = 0; i < left_keys; ++i) {
    SetInternalKey(*page, i, keys[i]);
    SetChildAt(*page, i, children[i]);
  }
  SetChildAt(*page, left_keys, children[left_keys]);
  // Right gets keys (left_keys, end) and children [left_keys+1, end].
  const size_t right_keys = total_keys - left_keys - 1;
  SetNumKeys(*right, static_cast<uint16_t>(right_keys));
  for (size_t i = 0; i < right_keys; ++i) {
    SetInternalKey(*right, i, keys[left_keys + 1 + i]);
    SetChildAt(*right, i, children[left_keys + 1 + i]);
  }
  SetChildAt(*right, right_keys, children[total_keys]);
  pager_->MarkDirty(pgno);
  pager_->MarkDirty(right_pgno);
  return std::optional<SplitResult>{SplitResult{up_key, right_pgno}};
}

sb::Status BTree::Insert(uint64_t key, std::span<const uint8_t> value) {
  if (value.size() > kMaxValueSize) {
    return sb::InvalidArgument("value too large");
  }
  SB_ASSIGN_OR_RETURN(auto split, InsertRec(root_, key, value));
  if (!split.has_value()) {
    return sb::OkStatus();
  }
  // Root split: keep the root page number stable by moving the old root's
  // content into a new page and turning the root into an internal node.
  SB_ASSIGN_OR_RETURN(const uint32_t left_pgno, pager_->AllocatePage());
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* left, pager_->GetPage(left_pgno));
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* root, pager_->GetPage(root_));
  *left = *root;
  std::fill(root->begin(), root->end(), 0);
  SetPageType(*root, kInternalType);
  SetNumKeys(*root, 1);
  SetChildAt(*root, 0, left_pgno);
  SetInternalKey(*root, 0, split->separator);
  SetChildAt(*root, 1, split->right_pgno);
  pager_->MarkDirty(left_pgno);
  pager_->MarkDirty(root_);
  return sb::OkStatus();
}

sb::StatusOr<std::vector<uint8_t>> BTree::Get(uint64_t key) {
  uint32_t pgno = root_;
  while (true) {
    SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));
    if (PageType(*page) == kInternalType) {
      pgno = ChildAt(*page, InternalChildIndex(*page, key));
      continue;
    }
    const size_t pos = LeafLowerBound(*page, key);
    if (pos < NumKeys(*page) && LeafKey(*page, pos) == key) {
      const std::span<const uint8_t> v = LeafValue(*page, pos);
      return std::vector<uint8_t>(v.begin(), v.end());
    }
    return sb::NotFound("key not found");
  }
}

sb::StatusOr<bool> BTree::Contains(uint64_t key) {
  auto v = Get(key);
  if (v.ok()) {
    return true;
  }
  if (v.status().code() == sb::ErrorCode::kNotFound) {
    return false;
  }
  return v.status();
}

sb::Status BTree::Update(uint64_t key, std::span<const uint8_t> value) {
  if (value.size() > kMaxValueSize) {
    return sb::InvalidArgument("value too large");
  }
  uint32_t pgno = root_;
  while (true) {
    SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));
    if (PageType(*page) == kInternalType) {
      pgno = ChildAt(*page, InternalChildIndex(*page, key));
      continue;
    }
    const size_t pos = LeafLowerBound(*page, key);
    if (pos < NumKeys(*page) && LeafKey(*page, pos) == key) {
      WriteLeafCell(*page, pos, key, value);
      pager_->MarkDirty(pgno);
      return sb::OkStatus();
    }
    return sb::NotFound("key not found");
  }
}

sb::Status BTree::Delete(uint64_t key) {
  uint32_t pgno = root_;
  while (true) {
    SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));
    if (PageType(*page) == kInternalType) {
      pgno = ChildAt(*page, InternalChildIndex(*page, key));
      continue;
    }
    const size_t pos = LeafLowerBound(*page, key);
    const size_t n = NumKeys(*page);
    if (pos < n && LeafKey(*page, pos) == key) {
      for (size_t i = pos; i + 1 < n; ++i) {
        CopyLeafCell(*page, i, *page, i + 1);
      }
      SetNumKeys(*page, static_cast<uint16_t>(n - 1));
      pager_->MarkDirty(pgno);
      return sb::OkStatus();
    }
    return sb::NotFound("key not found");
  }
}

sb::Status BTree::CollectKeys(uint32_t pgno, std::vector<uint64_t>* out) {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));
  if (PageType(*page) == kLeafType) {
    const size_t n = NumKeys(*page);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(LeafKey(*page, i));
    }
    return sb::OkStatus();
  }
  const size_t n = NumKeys(*page);
  std::vector<uint32_t> children;
  for (size_t i = 0; i <= n; ++i) {
    children.push_back(ChildAt(*page, i));
  }
  for (const uint32_t child : children) {
    SB_RETURN_IF_ERROR(CollectKeys(child, out));
  }
  return sb::OkStatus();
}

sb::StatusOr<std::vector<uint64_t>> BTree::Keys() {
  std::vector<uint64_t> out;
  SB_RETURN_IF_ERROR(CollectKeys(root_, &out));
  return out;
}

sb::Status BTree::ScanRec(uint32_t pgno, uint64_t lo, uint64_t hi, std::vector<Row>* out) {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));
  const size_t n = NumKeys(*page);
  if (PageType(*page) == kLeafType) {
    for (size_t i = LeafLowerBound(*page, lo); i < n; ++i) {
      const uint64_t key = LeafKey(*page, i);
      if (key > hi) {
        break;
      }
      const std::span<const uint8_t> value = LeafValue(*page, i);
      out->push_back(Row{key, std::vector<uint8_t>(value.begin(), value.end())});
    }
    return sb::OkStatus();
  }
  // Visit the children whose ranges intersect [lo, hi]. Collect first: the
  // page pointer is invalidated by recursive pager calls.
  std::vector<uint32_t> children;
  for (size_t i = 0; i <= n; ++i) {
    const bool below = i < n && InternalKey(*page, i) <= lo;
    const bool above = i > 0 && InternalKey(*page, i - 1) > hi;
    if (!below && !above) {
      children.push_back(ChildAt(*page, i));
    }
  }
  for (const uint32_t child : children) {
    SB_RETURN_IF_ERROR(ScanRec(child, lo, hi, out));
  }
  return sb::OkStatus();
}

sb::StatusOr<std::vector<BTree::Row>> BTree::Scan(uint64_t lo, uint64_t hi) {
  std::vector<Row> out;
  if (lo > hi) {
    return out;
  }
  SB_RETURN_IF_ERROR(ScanRec(root_, lo, hi, &out));
  return out;
}

sb::Status BTree::ValidateRec(uint32_t pgno, uint64_t lo, uint64_t hi, bool has_lo,
                              bool has_hi) {
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t>* page, pager_->GetPage(pgno));
  const size_t n = NumKeys(*page);
  if (PageType(*page) == kLeafType) {
    for (size_t i = 0; i < n; ++i) {
      const uint64_t k = LeafKey(*page, i);
      if (i > 0 && LeafKey(*page, i - 1) >= k) {
        return sb::Internal("leaf keys out of order");
      }
      if ((has_lo && k < lo) || (has_hi && k >= hi)) {
        return sb::Internal("leaf key outside separator bounds");
      }
    }
    return sb::OkStatus();
  }
  if (n == 0) {
    return sb::Internal("empty internal node");
  }
  struct ChildRange {
    uint32_t pgno;
    uint64_t lo, hi;
    bool has_lo, has_hi;
  };
  std::vector<ChildRange> ranges;
  for (size_t i = 0; i <= n; ++i) {
    ChildRange r;
    r.pgno = ChildAt(*page, i);
    r.has_lo = i > 0 || has_lo;
    r.lo = i > 0 ? InternalKey(*page, i - 1) : lo;
    r.has_hi = i < n || has_hi;
    r.hi = i < n ? InternalKey(*page, i) : hi;
    ranges.push_back(r);
    if (i > 0 && i < n && InternalKey(*page, i - 1) >= InternalKey(*page, i)) {
      return sb::Internal("internal keys out of order");
    }
  }
  for (const ChildRange& r : ranges) {
    SB_RETURN_IF_ERROR(ValidateRec(r.pgno, r.lo, r.hi, r.has_lo, r.has_hi));
  }
  return sb::OkStatus();
}

sb::Status BTree::Validate() { return ValidateRec(root_, 0, 0, false, false); }

}  // namespace minisql
