// B+tree over pager pages: the minisql table storage engine.
//
// Fixed-size cells (u64 key, up to kMaxValueSize bytes of value) in leaf
// pages; internal pages hold alternating child pointers and separator keys.
// Splits propagate upward; the root page number never changes (a splitting
// root becomes an internal page with two fresh children). Deletes are
// tombstone-free but do not rebalance (like many embedded engines).

#ifndef SRC_DB_BTREE_H_
#define SRC_DB_BTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/base/status.h"
#include "src/db/pager.h"

namespace minisql {

inline constexpr size_t kMaxValueSize = 200;

class BTree {
 public:
  BTree(Pager* pager, uint32_t root_pgno) : pager_(pager), root_(root_pgno) {}

  // Formats `pgno` as an empty leaf (a fresh table root).
  static sb::Status InitLeaf(Pager& pager, uint32_t pgno);

  uint32_t root() const { return root_; }

  sb::Status Insert(uint64_t key, std::span<const uint8_t> value);
  // Returns NotFound if the key is absent.
  sb::Status Update(uint64_t key, std::span<const uint8_t> value);
  sb::Status Delete(uint64_t key);
  sb::StatusOr<std::vector<uint8_t>> Get(uint64_t key);
  sb::StatusOr<bool> Contains(uint64_t key);

  // In-order key scan (tests / full table scans).
  sb::StatusOr<std::vector<uint64_t>> Keys();

  // Range scan: every (key, value) with lo <= key <= hi, in key order.
  struct Row {
    uint64_t key;
    std::vector<uint8_t> value;
  };
  sb::StatusOr<std::vector<Row>> Scan(uint64_t lo, uint64_t hi);

  // Structural validation: ordering and separator invariants (tests).
  sb::Status Validate();

 private:
  struct SplitResult {
    uint64_t separator;
    uint32_t right_pgno;
  };

  sb::StatusOr<std::optional<SplitResult>> InsertRec(uint32_t pgno, uint64_t key,
                                                     std::span<const uint8_t> value);
  sb::Status CollectKeys(uint32_t pgno, std::vector<uint64_t>* out);
  sb::Status ScanRec(uint32_t pgno, uint64_t lo, uint64_t hi, std::vector<Row>* out);
  sb::Status ValidateRec(uint32_t pgno, uint64_t lo, uint64_t hi, bool has_lo, bool has_hi);

  Pager* pager_;
  uint32_t root_;
};

}  // namespace minisql

#endif  // SRC_DB_BTREE_H_
