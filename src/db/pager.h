// Pager: fixed-size database pages cached over an FsClient file.
//
// This is minisql's equivalent of SQLite's pager: an LRU page cache in the
// database process (the "internal cache to handle the recent read requests"
// that makes the paper's query workload cheap), dirty-page tracking and a
// flush that turns one database operation into a burst of FS write RPCs.

#ifndef SRC_DB_PAGER_H_
#define SRC_DB_PAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/fs/fs_rpc.h"

namespace minisql {

inline constexpr uint32_t kDbPageSize = 1024;

class Pager {
 public:
  // `inum` identifies an open (possibly empty) file on the FS server.
  Pager(fsys::FsClient* fs, uint32_t inum, size_t cache_pages = 64);

  // Loads page 0 / discovers the page count. On an empty file, initializes a
  // fresh single-page database file.
  sb::Status Open();

  uint32_t num_pages() const { return num_pages_; }

  // Returns the page contents; pins nothing (pointers are invalidated by the
  // next pager call — copy or finish using before calling again).
  sb::StatusOr<std::vector<uint8_t>*> GetPage(uint32_t pgno);
  // Marks a page dirty after mutation.
  void MarkDirty(uint32_t pgno);
  // Appends a zeroed page to the file.
  sb::StatusOr<uint32_t> AllocatePage();
  // Writes every dirty page back through the FS (one RPC per page).
  sb::Status Flush();

  uint64_t page_faults() const { return page_faults_; }
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t flushes() const { return flushes_; }

 private:
  struct Entry {
    std::vector<uint8_t> data;
    bool dirty = false;
  };

  sb::Status EvictIfNeeded();

  fsys::FsClient* fs_;
  uint32_t inum_;
  size_t cache_capacity_;
  uint32_t num_pages_ = 0;
  std::unordered_map<uint32_t, Entry> cache_;
  std::list<uint32_t> lru_;  // Front = most recent.
  uint64_t page_faults_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t flushes_ = 0;
};

}  // namespace minisql

#endif  // SRC_DB_PAGER_H_
