#include "src/db/pager.h"

#include "src/base/logging.h"

namespace minisql {

Pager::Pager(fsys::FsClient* fs, uint32_t inum, size_t cache_pages)
    : fs_(fs), inum_(inum), cache_capacity_(cache_pages) {}

sb::Status Pager::Open() {
  SB_ASSIGN_OR_RETURN(const uint32_t size, fs_->Size(inum_));
  if (size % kDbPageSize != 0) {
    return sb::FailedPrecondition("database file size not page aligned");
  }
  num_pages_ = size / kDbPageSize;
  if (num_pages_ == 0) {
    SB_RETURN_IF_ERROR(AllocatePage().status());
    SB_RETURN_IF_ERROR(Flush());
  }
  return sb::OkStatus();
}

sb::Status Pager::EvictIfNeeded() {
  while (cache_.size() >= cache_capacity_) {
    // Evict the least recently used clean page; flush a dirty one if needed.
    uint32_t victim = lru_.back();
    auto it = cache_.find(victim);
    SB_CHECK(it != cache_.end());
    if (it->second.dirty) {
      SB_RETURN_IF_ERROR(
          fs_->Write(inum_, victim * kDbPageSize, it->second.data));
    }
    cache_.erase(it);
    lru_.pop_back();
  }
  return sb::OkStatus();
}

sb::StatusOr<std::vector<uint8_t>*> Pager::GetPage(uint32_t pgno) {
  if (pgno >= num_pages_) {
    return sb::OutOfRange("page beyond end of database");
  }
  auto it = cache_.find(pgno);
  if (it != cache_.end()) {
    ++cache_hits_;
    lru_.remove(pgno);
    lru_.push_front(pgno);
    return &it->second.data;
  }
  ++page_faults_;
  SB_RETURN_IF_ERROR(EvictIfNeeded());
  SB_ASSIGN_OR_RETURN(std::vector<uint8_t> data, fs_->Read(inum_, pgno * kDbPageSize, kDbPageSize));
  if (data.size() != kDbPageSize) {
    data.resize(kDbPageSize, 0);
  }
  auto [pos, inserted] = cache_.emplace(pgno, Entry{std::move(data), false});
  SB_CHECK(inserted);
  lru_.push_front(pgno);
  return &pos->second.data;
}

void Pager::MarkDirty(uint32_t pgno) {
  auto it = cache_.find(pgno);
  SB_CHECK(it != cache_.end()) << "MarkDirty on uncached page";
  it->second.dirty = true;
}

sb::StatusOr<uint32_t> Pager::AllocatePage() {
  SB_RETURN_IF_ERROR(EvictIfNeeded());
  const uint32_t pgno = num_pages_++;
  auto [pos, inserted] = cache_.emplace(pgno, Entry{std::vector<uint8_t>(kDbPageSize, 0), true});
  SB_CHECK(inserted);
  lru_.push_front(pgno);
  return pgno;
}

sb::Status Pager::Flush() {
  ++flushes_;
  for (auto& [pgno, entry] : cache_) {
    if (entry.dirty) {
      SB_RETURN_IF_ERROR(fs_->Write(inum_, pgno * kDbPageSize, entry.data));
      entry.dirty = false;
    }
  }
  return sb::OkStatus();
}

}  // namespace minisql
