// minisql: a small embedded relational store (the SQLite3 stand-in).
//
// A database is one file on the xv6fs server. Page 0 is the catalog; each
// table is a B+tree keyed by a u64 row key. The four operations the paper
// benchmarks map directly: Insert / Update / Query / Delete (Table 4).
//
// Like SQLite, minisql keeps an internal cache: the pager's page cache plus
// a row cache for recent reads — which is why the Query workload triggers
// far fewer IPCs than the write operations (Section 6.5).

#ifndef SRC_DB_MINISQL_H_
#define SRC_DB_MINISQL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/db/btree.h"
#include "src/db/pager.h"
#include "src/fs/fs_rpc.h"

namespace minisql {

struct DbStats {
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t queries = 0;
  uint64_t deletes = 0;
  uint64_t row_cache_hits = 0;
};

class Database;

// A handle to one table.
class Table {
 public:
  sb::Status Insert(uint64_t key, std::span<const uint8_t> value);
  sb::Status Update(uint64_t key, std::span<const uint8_t> value);
  sb::StatusOr<std::vector<uint8_t>> Query(uint64_t key);
  // SELECT ... WHERE key BETWEEN lo AND hi (in key order).
  sb::StatusOr<std::vector<BTree::Row>> Scan(uint64_t lo, uint64_t hi);
  sb::Status Delete(uint64_t key);
  sb::StatusOr<uint64_t> RowCount();

  BTree& btree() { return btree_; }

 private:
  friend class Database;
  Table(Database* db, size_t catalog_index, uint32_t root)
      : db_(db), catalog_index_(catalog_index), btree_(nullptr, root) {}

  Database* db_;
  size_t catalog_index_;
  BTree btree_;
};

class Database {
 public:
  struct Config {
    size_t pager_cache_pages = 64;
    size_t row_cache_entries = 1024;
    // Cycles charged per statement for parse/plan (SQLite-ish overhead).
    uint64_t statement_cycles = 1500;
    // Rollback journal (SQLite-style): write transactions bracket their page
    // flush with journal writes to a sibling "-journal" file, adding the FS
    // round trips a real SQLite commit performs.
    bool use_journal = true;
  };

  // Opens (creating if needed) the database file at `path` on the FS server.
  static sb::StatusOr<std::unique_ptr<Database>> Open(fsys::FsClient* fs,
                                                      const std::string& path,
                                                      Config config);
  static sb::StatusOr<std::unique_ptr<Database>> Open(fsys::FsClient* fs,
                                                      const std::string& path) {
    return Open(fs, path, Config{});
  }

  sb::StatusOr<Table*> CreateTable(const std::string& name);
  sb::StatusOr<Table*> OpenTable(const std::string& name);

  Pager& pager() { return *pager_; }
  const DbStats& stats() const { return stats_; }

  // When set, statement execution charges cycles and touches this heap
  // region on the core (the client process's working set).
  void SetChargedContext(hw::Core* core, hw::Gva heap_base) {
    core_ = core;
    heap_base_ = heap_base;
  }

 private:
  friend class Table;

  struct CatalogEntry {
    std::string name;
    uint32_t root = 0;
    uint64_t rows = 0;
  };

  Database(fsys::FsClient* fs, uint32_t inum, Config config);

  sb::Status LoadCatalog();
  sb::Status StoreCatalog();
  void ChargeStatement(bool write);
  sb::Status JournalBegin();
  sb::Status JournalEnd();

  // Row cache.
  bool RowCacheGet(uint64_t key, std::vector<uint8_t>* value);
  void RowCachePut(uint64_t key, std::vector<uint8_t> value);
  void RowCacheErase(uint64_t key);

  fsys::FsClient* fs_;
  uint32_t inum_;
  uint32_t journal_inum_ = 0;
  Config config_;
  std::unique_ptr<Pager> pager_;
  std::vector<CatalogEntry> catalog_;
  std::vector<std::unique_ptr<Table>> tables_;
  DbStats stats_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> row_cache_;
  std::list<uint64_t> row_lru_;
  hw::Core* core_ = nullptr;
  hw::Gva heap_base_ = 0;
};

}  // namespace minisql

#endif  // SRC_DB_MINISQL_H_
