#include "src/mk/scheduler.h"

#include <algorithm>

#include "src/mk/kernel.h"

namespace mk {
namespace {

// Queue manipulation + dispatch bookkeeping (picked small: the paper's
// fastpath analysis treats scheduler entry as the thing worth avoiding).
constexpr uint64_t kDispatchCycles = 150;

}  // namespace

Scheduler::Scheduler(Kernel* kernel, int core_id) : kernel_(kernel), core_id_(core_id) {
  if (kernel_ != nullptr) {
    kernel_->RegisterScheduler(core_id_, this);
  }
}

Scheduler::~Scheduler() {
  if (kernel_ != nullptr) {
    kernel_->UnregisterScheduler(core_id_, this);
  }
}

void Scheduler::UnblockAborted(Thread* thread, int priority) {
  if (thread == nullptr || priority < 0 || priority >= kNumPriorities) {
    return;
  }
  ++abort_unblocks_;
  kernel_->machine().telemetry().GetCounter("mk.sched.abort_unblocks").Add();
  if (IsQueued(thread)) {
    return;  // Already runnable; the abort wakeup is idempotent.
  }
  // Front of the queue: the aborted caller resumes ahead of round-robin
  // peers, mirroring the direct-switch bias of the fastpath.
  ready_[static_cast<size_t>(priority)].push_front(thread);
}

sb::Status Scheduler::Enqueue(Thread* thread, int priority) {
  if (priority < 0 || priority >= kNumPriorities) {
    return sb::InvalidArgument("bad priority");
  }
  if (IsQueued(thread)) {
    return sb::AlreadyExists("thread already queued");
  }
  ready_[static_cast<size_t>(priority)].push_back(thread);
  return sb::OkStatus();
}

void Scheduler::Dequeue(Thread* thread) {
  for (auto& queue : ready_) {
    auto it = std::find(queue.begin(), queue.end(), thread);
    if (it != queue.end()) {
      queue.erase(it);
      return;
    }
  }
}

bool Scheduler::IsQueued(const Thread* thread) const {
  for (const auto& queue : ready_) {
    if (std::find(queue.begin(), queue.end(), thread) != queue.end()) {
      return true;
    }
  }
  return false;
}

size_t Scheduler::ready_count() const {
  size_t n = 0;
  for (const auto& queue : ready_) {
    n += queue.size();
  }
  return n;
}

sb::StatusOr<Thread*> Scheduler::Schedule() {
  // Bound lazily: the scheduler is constructed before some test kernels
  // finish wiring the machine, but always schedules after.
  if (metric_dispatches_ == nullptr) {
    sb::telemetry::Registry& reg = kernel_->machine().telemetry();
    metric_dispatches_ = &reg.GetCounter("mk.sched.dispatches");
    metric_process_switches_ = &reg.GetCounter("mk.sched.process_switches");
  }
  hw::Core& core = kernel_->machine().core(core_id_);
  core.AdvanceCycles(kDispatchCycles);
  for (auto& queue : ready_) {
    if (queue.empty()) {
      continue;
    }
    Thread* next = queue.front();
    queue.pop_front();
    queue.push_back(next);  // Round-robin within the priority.
    ++dispatches_;
    metric_dispatches_->Add();
    if (kernel_->current_process(core_id_) != next->process()) {
      ++process_switches_;
      metric_process_switches_->Add();
      SB_RETURN_IF_ERROR(kernel_->ContextSwitchTo(core, next->process()));
    }
    return next;
  }
  return sb::NotFound("no runnable thread");
}

}  // namespace mk
