// Per-core scheduler: fixed priorities with round-robin within a priority,
// plus the "direct process switch" behaviour the paper's Section 8 discusses
// (Benno scheduling): the IPC fastpath hands the core straight to the
// receiver without touching the ready queue, so the queue is only consulted
// when a thread blocks, yields or is preempted.

#ifndef SRC_MK_SCHEDULER_H_
#define SRC_MK_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <deque>

#include "src/base/status.h"
#include "src/base/telemetry/metrics.h"
#include "src/mk/process.h"

namespace mk {

class Kernel;

inline constexpr int kNumPriorities = 4;  // 0 = highest.

class Scheduler {
 public:
  // Registers with the kernel's scheduler registry so kernel-initiated
  // wakeups (aborted-call unblocks) can find this core's ready queue.
  Scheduler(Kernel* kernel, int core_id);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Makes a thread runnable at `priority`. Enqueueing an already-queued
  // thread is an error (threads are queued at most once).
  sb::Status Enqueue(Thread* thread, int priority);
  // Wakes the caller of an aborted synchronous call (SkyBridge crash
  // recovery): front-of-queue enqueue at `priority`, idempotent — an
  // already-runnable thread is left where it is.
  void UnblockAborted(Thread* thread, int priority);
  // Removes a blocked thread from the ready queue (no-op if absent).
  void Dequeue(Thread* thread);
  bool IsQueued(const Thread* thread) const;
  size_t ready_count() const;

  // Picks the next thread: highest priority first, round-robin within a
  // priority (the picked thread goes to the back of its queue). Charges the
  // dispatch cost and context-switches the core if the process changes.
  // Returns NotFound when nothing is runnable.
  sb::StatusOr<Thread*> Schedule();

  uint64_t dispatches() const { return dispatches_; }
  uint64_t process_switches() const { return process_switches_; }
  uint64_t abort_unblocks() const { return abort_unblocks_; }

 private:
  Kernel* kernel_;
  int core_id_;
  std::array<std::deque<Thread*>, kNumPriorities> ready_;
  uint64_t dispatches_ = 0;
  uint64_t process_switches_ = 0;
  uint64_t abort_unblocks_ = 0;
  // Registry mirrors (mk.sched.*), bound on first Schedule().
  sb::telemetry::Counter* metric_dispatches_ = nullptr;
  sb::telemetry::Counter* metric_process_switches_ = nullptr;
};

}  // namespace mk

#endif  // SRC_MK_SCHEDULER_H_
