#include "src/mk/profile.h"

#include "src/base/logging.h"

namespace mk {

// Calibration notes (targets from Figure 7, empty message, cycles/roundtrip):
//   One-way direct cost = SYSCALL(82) + 2xSWAPGS(52) + SYSRET(75) + CR3(186)
//                         + logic [+ schedule + copies].
//   seL4 fastpath:  2 x (395 + 98)                      =   986
//   Fiasco fastpath: 2 x (395 + 963)                    =  2716  (~2717)
//   Zircon:         2 x (395 + 1283 + 1300 + 2x550)     =  8156  (~8157)
//   Cross-core roundtrip = caller mode switch (209) + server mode switch
//   (209) + 2 IPIs (3826) + remote schedule + 2x slowpath logic + copies:
//   seL4:   4244 +  500 + 2x1010                        =  6764
//   Fiasco: 4244 +  500 + 2x1848                        =  8440
//   Zircon: 4244 + 3000 + 2x5328 + 2x(2x550)            = 20100  (~20099)

KernelProfile Sel4Profile() {
  KernelProfile p;
  p.kind = KernelKind::kSel4;
  p.name = "seL4";
  p.has_fastpath = true;
  p.fastpath_logic_cycles = 98;
  p.slowpath_logic_cycles = 1010;
  p.schedule_cycles = 0;
  p.cross_schedule_cycles = 500;
  p.copy_fixed_cycles = 0;
  p.copies_per_transfer = 0;
  p.copies_long_transfer = 1;
  p.kernel_code_footprint = 512;  // The seL4 fastpath is famously tiny.
  p.kernel_data_footprint = 256;
  return p;
}

KernelProfile FiascoProfile() {
  KernelProfile p;
  p.kind = KernelKind::kFiasco;
  p.name = "Fiasco.OC";
  p.has_fastpath = true;
  // The Fiasco fastpath handles deferred requests (drq) during IPC, which is
  // why it is slower than seL4's.
  p.fastpath_logic_cycles = 963;
  p.slowpath_logic_cycles = 1848;
  p.schedule_cycles = 0;
  p.cross_schedule_cycles = 500;
  p.copy_fixed_cycles = 0;
  p.copies_per_transfer = 0;
  p.copies_long_transfer = 1;
  p.kernel_code_footprint = 2048;
  p.kernel_data_footprint = 832;
  return p;
}

KernelProfile ZirconProfile() {
  KernelProfile p;
  p.kind = KernelKind::kZircon;
  p.name = "Zircon";
  p.has_fastpath = false;
  p.fastpath_logic_cycles = 1283;  // Used as the common-path logic cost.
  p.slowpath_logic_cycles = 5328;
  p.schedule_cycles = 1300;  // Zircon may enter the scheduler on every IPC.
  p.cross_schedule_cycles = 3000;
  p.copy_fixed_cycles = 550;  // Channel writes copy in and out of the kernel.
  p.copies_per_transfer = 2;
  p.copies_long_transfer = 2;
  p.kernel_code_footprint = 3072;
  p.kernel_data_footprint = 1280;
  return p;
}

KernelProfile LinuxProfile() {
  KernelProfile p;
  p.kind = KernelKind::kLinux;
  p.name = "Linux (monolithic)";
  p.has_fastpath = false;
  // Pipe/UDS-style transfer: vfs + pipe buffer logic, two copies, a reader
  // wakeup through the scheduler, and KPTI page-table switches on every
  // kernel crossing. Calibrated to a ~4 us pipe ping-pong on Skylake.
  p.fastpath_logic_cycles = 1900;
  p.slowpath_logic_cycles = 3200;
  p.schedule_cycles = 1500;
  p.cross_schedule_cycles = 2500;
  p.copy_fixed_cycles = 600;
  p.copies_per_transfer = 2;
  p.copies_long_transfer = 2;
  p.kpti = true;
  p.kernel_code_footprint = 4096;
  p.kernel_data_footprint = 2048;
  return p;
}

KernelProfile ProfileFor(KernelKind kind) {
  switch (kind) {
    case KernelKind::kSel4:
      return Sel4Profile();
    case KernelKind::kFiasco:
      return FiascoProfile();
    case KernelKind::kZircon:
      return ZirconProfile();
    case KernelKind::kLinux:
      return LinuxProfile();
  }
  SB_CHECK(false) << "unknown kernel kind";
  return Sel4Profile();
}

}  // namespace mk
