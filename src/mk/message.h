// IPC message: a tag word plus a byte payload. Payloads up to the profile's
// register capacity travel in registers; larger ones go through memory
// (kernel copies for classic IPC, per-thread shared buffers for SkyBridge).
//
// A message holds its payload in one of two modes:
//   - owned: the bytes live in `data` (the classic mode, always safe);
//   - borrowed: `view` points into memory the message does not own — a
//     SkyBridge shared-buffer slice. Borrowed messages are views with the
//     lifetime of that slice: they are valid until the next call on the same
//     connection reuses the slice. Use payload() to read either mode and
//     ToOwned() to detach a borrowed message from the buffer.

#ifndef SRC_MK_MESSAGE_H_
#define SRC_MK_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace mk {

struct Message {
  uint64_t tag = 0;
  std::vector<uint8_t> data;
  // Non-owning payload view (borrowed mode). Empty span => owned mode.
  std::span<const uint8_t> view;
  // Optional capability transfer (seL4-style grant). A message carrying a
  // capability cannot take the IPC fastpath ("no capabilities are
  // transferred" is one of the fastpath preconditions, Section 1).
  bool has_cap_grant = false;
  uint64_t grant_endpoint = 0;
  uint32_t grant_rights = 0;

  Message() = default;
  explicit Message(uint64_t t) : tag(t) {}
  Message(uint64_t t, std::vector<uint8_t> d) : tag(t), data(std::move(d)) {}

  static Message FromString(uint64_t tag, const std::string& s) {
    return Message(tag, std::vector<uint8_t>(s.begin(), s.end()));
  }

  // Builds a borrowed message over externally owned bytes (shared-buffer
  // slice). The caller guarantees the bytes outlive every read of the view.
  static Message Borrowed(uint64_t tag, std::span<const uint8_t> payload) {
    Message m(tag);
    m.view = payload;
    return m;
  }

  bool borrowed() const { return view.data() != nullptr; }

  // The payload bytes regardless of mode. Prefer this over touching `data`
  // directly — borrowed messages keep `data` empty.
  std::span<const uint8_t> payload() const {
    return borrowed() ? view : std::span<const uint8_t>(data);
  }

  // Detaches from any borrowed storage: returns an owned copy whose payload
  // survives slice reuse. Owned messages copy through unchanged.
  Message ToOwned() const {
    Message m(tag);
    const std::span<const uint8_t> p = payload();
    m.data.assign(p.begin(), p.end());
    m.has_cap_grant = has_cap_grant;
    m.grant_endpoint = grant_endpoint;
    m.grant_rights = grant_rights;
    return m;
  }

  size_t size() const { return borrowed() ? view.size() : data.size(); }
  std::string ToString() const {
    const std::span<const uint8_t> p = payload();
    return std::string(p.begin(), p.end());
  }
};

}  // namespace mk

#endif  // SRC_MK_MESSAGE_H_
