// IPC message: a tag word plus a byte payload. Payloads up to the profile's
// register capacity travel in registers; larger ones go through memory
// (kernel copies for classic IPC, per-thread shared buffers for SkyBridge).

#ifndef SRC_MK_MESSAGE_H_
#define SRC_MK_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace mk {

struct Message {
  uint64_t tag = 0;
  std::vector<uint8_t> data;
  // Optional capability transfer (seL4-style grant). A message carrying a
  // capability cannot take the IPC fastpath ("no capabilities are
  // transferred" is one of the fastpath preconditions, Section 1).
  bool has_cap_grant = false;
  uint64_t grant_endpoint = 0;
  uint32_t grant_rights = 0;

  Message() = default;
  explicit Message(uint64_t t) : tag(t) {}
  Message(uint64_t t, std::vector<uint8_t> d) : tag(t), data(std::move(d)) {}

  static Message FromString(uint64_t tag, const std::string& s) {
    return Message(tag, std::vector<uint8_t>(s.begin(), s.end()));
  }

  size_t size() const { return data.size(); }
  std::string ToString() const { return std::string(data.begin(), data.end()); }
};

}  // namespace mk

#endif  // SRC_MK_MESSAGE_H_
