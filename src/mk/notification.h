// Asynchronous notifications (paper Section 8: modern microkernels ship a
// mixture of synchronous IPC and asynchronous notification objects).
//
// A notification is a word of binary semaphores: Signal() ORs a badge into
// the word (cheap, non-blocking, one syscall); Wait() collects and clears
// the accumulated badges, blocking in virtual time until a signal arrives.
// Combined with a shared-memory ring this is the classic alternative to
// synchronous IPC that SkyBridge's direct call outperforms for
// request/response patterns.

#ifndef SRC_MK_NOTIFICATION_H_
#define SRC_MK_NOTIFICATION_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/hw/core.h"

namespace mk {

class Kernel;

class Notification {
 public:
  Notification(Kernel* kernel, uint64_t id) : kernel_(kernel), id_(id) {}

  uint64_t id() const { return id_; }

  // Signals `badge` (a syscall: mode switch + tiny kernel logic). If a waiter
  // is blocked, its wakeup time becomes max(waiter arrival, signal time).
  sb::Status Signal(hw::Core& core, uint64_t badge);

  // Waits for (and clears) the badge word. If badges are already pending it
  // returns immediately; otherwise the caller blocks until the next signal's
  // virtual time (plus the scheduler wakeup cost). Returns the badges.
  sb::StatusOr<uint64_t> Wait(hw::Core& core);

  // Non-blocking poll: returns pending badges (possibly 0) and clears them.
  sb::StatusOr<uint64_t> Poll(hw::Core& core);

  uint64_t signals() const { return signals_; }
  uint64_t waits() const { return waits_; }

 private:
  Kernel* kernel_;
  uint64_t id_;
  uint64_t badges_ = 0;
  uint64_t last_signal_time_ = 0;
  uint64_t signals_ = 0;
  uint64_t waits_ = 0;
};

}  // namespace mk

#endif  // SRC_MK_NOTIFICATION_H_
