// The Subkernel: the microkernel the benchmarks run on.
//
// One framework, three personalities (KernelProfile). It owns guest physical
// memory, the kernel address space (shared into every process's upper half),
// process/thread/capability management, endpoints, and the synchronous IPC
// path whose direct costs reproduce Section 2.1:
//
//   one-way IPC = SYSCALL + SWAPGS            (mode switch in)
//               + [KPTI CR3 switch]
//               + IPC logic                   (fastpath checks, caps, drq...)
//               + message copies              (per personality)
//               + [scheduler]                 (personality/slowpath)
//               + CR3 switch to the target    (address space switch)
//               + SWAPGS + SYSRET             (mode switch out)
//
// Cross-core IPC degenerates to the slowpath: the request is IPI'd to the
// server's core, serialized on the endpoint (FIFO in virtual time), handled
// there, and IPI'd back.
//
// When `boot_rootkernel` is set the kernel self-virtualizes at boot (one
// call into the Rootkernel, Section 4.2) and process creation additionally
// creates a per-process EPT; context switches install the process's EPTP
// list via VMCALL.

#ifndef SRC_MK_KERNEL_H_
#define SRC_MK_KERNEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/hw/machine.h"
#include "src/mk/message.h"
#include "src/mk/process.h"
#include "src/mk/profile.h"
#include "src/sim/executor.h"
#include "src/vmm/rootkernel.h"

namespace mk {

// Per-call cost accounting, bucketed like Figure 7's legend.
struct CostBreakdown {
  uint64_t vmfunc = 0;
  uint64_t syscall_sysret = 0;
  uint64_t context_switch = 0;
  uint64_t ipi = 0;
  uint64_t copy = 0;
  uint64_t schedule = 0;
  uint64_t others = 0;

  uint64_t total() const {
    return vmfunc + syscall_sysret + context_switch + ipi + copy + schedule + others;
  }
  CostBreakdown& operator+=(const CostBreakdown& rhs) {
    vmfunc += rhs.vmfunc;
    syscall_sysret += rhs.syscall_sysret;
    context_switch += rhs.context_switch;
    ipi += rhs.ipi;
    copy += rhs.copy;
    schedule += rhs.schedule;
    others += rhs.others;
    return *this;
  }
};

class Kernel;
class Notification;
class Scheduler;

// Execution environment handed to an endpoint handler. The handler runs in
// the *server's* address space on `core`; all memory access goes through the
// charged translation path.
struct CallEnv {
  Kernel& kernel;
  hw::Core& core;
  Process& server;
  const Message& request;
  // In-place reply support (SkyBridge zero-copy long-message path): when
  // non-empty, the handler may build its reply payload directly into this
  // host view of the connection's shared-buffer slice and return
  // Message::Borrowed over the bytes it wrote — the bridge then skips the
  // reply copy. `reply_buffer_va` is the same memory's guest VA (mapped at
  // the same address in client and server). Empty for classic kernel IPC.
  std::span<uint8_t> reply_buffer;
  hw::Gva reply_buffer_va = 0;
};

using Handler = std::function<Message(CallEnv&)>;

class Endpoint {
 public:
  Endpoint(uint64_t id, Process* owner, Handler handler)
      : id_(id), owner_(owner), handler_(std::move(handler)) {}

  uint64_t id() const { return id_; }
  Process* owner() const { return owner_; }
  Handler& handler() { return handler_; }

  // Cores running a server thread for this endpoint. A call from one of
  // these cores is served locally (direct process switch); anything else is
  // a cross-core call to cores[hash].
  void set_server_cores(std::vector<int> cores) { server_cores_ = std::move(cores); }
  const std::vector<int>& server_cores() const { return server_cores_; }

  sim::FifoResource& service() { return service_; }
  hw::Gva recv_buffer() const { return recv_buffer_; }
  void set_recv_buffer(hw::Gva va) { recv_buffer_ = va; }

  uint64_t calls() const { return calls_; }
  void count_call() { ++calls_; }

 private:
  uint64_t id_;
  Process* owner_;
  Handler handler_;
  std::vector<int> server_cores_;
  sim::FifoResource service_;
  hw::Gva recv_buffer_ = 0;
  uint64_t calls_ = 0;
};

struct KernelOptions {
  bool boot_rootkernel = true;
  vmm::RootkernelConfig rootkernel_config;
  uint64_t process_heap_bytes = 8ULL * 1024 * 1024;
  uint64_t kernel_code_bytes = 2ULL * 1024 * 1024;
  uint64_t kernel_data_bytes = 4ULL * 1024 * 1024;
};

class Kernel {
 public:
  Kernel(hw::Machine& machine, KernelProfile profile, KernelOptions options = {});
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  sb::Status Boot();

  // ---- Accessors ----
  hw::Machine& machine() { return *machine_; }
  const KernelProfile& profile() const { return profile_; }
  vmm::Rootkernel* rootkernel() { return rootkernel_.get(); }
  hw::FrameAllocator& guest_frames() { return guest_frames_; }
  hw::AddressSpace& kernel_as() { return *kernel_as_; }
  hw::Gpa identity_gpa() const { return identity_gpa_; }
  const KernelOptions& options() const { return options_; }

  // ---- Processes & threads ----
  sb::StatusOr<Process*> CreateProcess(const std::string& name);
  sb::StatusOr<Process*> CreateProcessWithImage(const std::string& name,
                                                std::vector<uint8_t> code_image);
  const std::vector<std::unique_ptr<Process>>& processes() const { return processes_; }

  // ---- Endpoints & capabilities ----
  sb::StatusOr<Endpoint*> CreateEndpoint(Process* owner, Handler handler,
                                         std::vector<int> server_cores);
  Endpoint* endpoint(uint64_t id);
  sb::StatusOr<CapSlot> GrantEndpointCap(Process* to, uint64_t endpoint_id, uint32_t rights);

  // ---- Notifications ----
  // Creates a kernel-owned notification object (Section 8 async primitive;
  // also the parking path for SkyBridge batch completions). Lives as long
  // as the kernel.
  Notification* CreateNotification();

  // ---- Context switching ----
  // Switches `core` to `process` (CR3 write + EPTP list install when
  // virtualized). This is the scheduler's dispatch tail.
  sb::Status ContextSwitchTo(hw::Core& core, Process* process, CostBreakdown* bd = nullptr);
  Process* current_process(int core_id) const { return current_[static_cast<size_t>(core_id)]; }

  // Why an EPTP list was (re)installed on a core: the ordinary dispatch
  // tail, or an eager re-install on a thread's new core after MigrateThread.
  enum class EptpInstallReason { kDispatch, kMigration };
  // Observer fired after every virtualized context switch installs a
  // process's EPTP list (SkyBridge counts eager migration installs against
  // the lazy stale-slot fallback). One hook; nullptr uninstalls.
  using EptpInstallHook = std::function<void(hw::Core&, Process*, EptpInstallReason)>;
  void SetEptpInstallHook(EptpInstallHook hook) { eptp_install_hook_ = std::move(hook); }

  // Delegated EPTP install (DESIGN.md section 15): when set, the dispatch
  // tail hands the whole list-programming step to this installer instead of
  // the legacy clear+append of the process's full eptp_list_ids — SkyBridge
  // plugs its per-core slot working set in here, so a context switch only
  // makes the process's own view resident and points the active index at
  // it. The observer hook above still fires after the installer. nullptr
  // restores the legacy path.
  using EptpInstaller = std::function<sb::Status(hw::Core&, Process*, EptpInstallReason)>;
  void SetEptpInstaller(EptpInstaller installer) { eptp_installer_ = std::move(installer); }

  // ---- Thread migration (per-core control plane, DESIGN.md section 11) ----
  // Moves `thread` to `dest_core`. With `eager_install` (the default) the
  // scheduler hook semantics apply: the thread's process is dispatched on
  // the destination core immediately, re-installing its EPTP list there so
  // the first post-migration call pays no stale-slot recovery. With it
  // false, only the thread's core id moves — the next call recovers lazily
  // through the dispatch switch / stale-slot retry fallback.
  sb::Status MigrateThread(Thread* thread, int dest_core, CostBreakdown* bd = nullptr,
                           bool eager_install = true);

  // ---- Scheduler registry ----
  // Schedulers self-register at construction so kernel-initiated wakeups
  // (e.g. unblocking the caller of an aborted SkyBridge call) can reach the
  // core's ready queue. Kernels without schedulers (most benches) simply have
  // no entry and the wakeup is a no-op.
  void RegisterScheduler(int core_id, Scheduler* scheduler);
  void UnregisterScheduler(int core_id, Scheduler* scheduler);
  Scheduler* scheduler(int core_id) const;

  // ---- Abort unwind (SkyBridge crash recovery, DESIGN.md section 10) ----
  // The Subkernel's half of the abort protocol: after the Rootkernel has
  // forced the core back to the caller's EPT view and the trampoline frame
  // has been popped, the kernel completes the unwind on the syscall path and
  // makes the aborted caller runnable again through the core's scheduler.
  void FinishAbortedCall(hw::Core& core, Thread* caller, CostBreakdown* bd = nullptr);

  // Reads the identity page (Section 4.2): which process does the hardware
  // translation context say is running? Requires the identity VA mapping.
  sb::StatusOr<uint64_t> CurrentIdentity(hw::Core& core);

  // ---- Lazy registration exec faults (DESIGN.md section 17) ----
  // Delivers an EPT exec-violation VM exit for `gpa` on `core` (charging the
  // exit round trip and the PMU counter); the Rootkernel routes it into the
  // installed exec-fault handler — SkyBridge's rewrite-on-first-execute slow
  // path. Ok when the handler made the page executable; Unavailable when the
  // fault stays unresolved (no handler, or the handler failed).
  sb::Status RaiseExecFault(hw::Core& core, hw::Gpa gpa);

  // Installs (or, with nullptr, clears) the exec-fault slow path on the
  // booted Rootkernel. The handler returns ok once the faulting page has
  // been rewritten and re-enabled for execution.
  using ExecFaultHandler = std::function<sb::Status(hw::Core&, hw::Gpa)>;
  void SetExecFaultHandler(ExecFaultHandler handler);

  // ---- The synchronous IPC path ----
  // Caller must be the current process on the caller thread's core. A
  // message carrying a capability grant (msg.has_cap_grant) is delivered via
  // the slowpath and the capability is minted into the receiver's cap space
  // (the caller must hold the grant right on it).
  sb::StatusOr<Message> IpcCall(Thread* caller, CapSlot cap_slot, const Message& msg,
                                CostBreakdown* bd = nullptr);

  // Slot the most recent IPC-transferred capability landed in (receiver's
  // cap space); kMaxUint32 if none.
  CapSlot last_granted_slot() const { return last_granted_slot_; }

  // ---- Syscall-path primitives (also used by the SkyBridge registration
  // syscalls and by the microbenchmarks) ----
  void SyscallEnter(hw::Core& core, CostBreakdown* bd);
  void SyscallExit(hw::Core& core, CostBreakdown* bd);
  // A no-op syscall round trip, as measured in Table 2.
  void NoOpSyscall(hw::Core& core);
  void SwitchAddressSpace(hw::Core& core, Process* to, CostBreakdown* bd);

  // Charges the kernel IPC software logic and touches kernel structures.
  void ChargeIpcLogic(hw::Core& core, bool fastpath, CostBreakdown* bd);

  // Statistics.
  uint64_t ipc_calls() const { return ipc_calls_; }
  uint64_t cross_core_calls() const { return cross_core_calls_; }

 private:
  sb::Status SetupKernelAddressSpace();
  sb::Status ContextSwitchInternal(hw::Core& core, Process* process, CostBreakdown* bd,
                                   EptpInstallReason reason);
  void TouchKernelEntry(hw::Core& core);
  void ChargeCopies(hw::Core& core, const Message& msg, int copies, CostBreakdown* bd);
  sb::StatusOr<Message> ServeLocal(hw::Core& core, Endpoint& ep, Process* caller_proc,
                                   const Message& msg, CostBreakdown* bd);
  sb::StatusOr<Message> ServeCrossCore(hw::Core& caller_core, Endpoint& ep, int server_core,
                                       Process* caller_proc, const Message& msg,
                                       CostBreakdown* bd);

  hw::Machine* machine_;
  KernelProfile profile_;
  KernelOptions options_;
  std::unique_ptr<vmm::Rootkernel> rootkernel_;
  hw::FrameAllocator guest_frames_;
  std::unique_ptr<hw::AddressSpace> kernel_as_;
  hw::Gpa identity_gpa_ = 0;
  uint64_t next_pid_ = 1;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  std::vector<std::unique_ptr<Notification>> notifications_;
  std::vector<Process*> current_;
  std::vector<Scheduler*> schedulers_;  // Indexed by core id; sparse.
  // Pre-computed warm-cache cost of the kernel footprint touches, subtracted
  // from the calibrated logic constants to avoid double counting.
  uint64_t warm_footprint_cycles_ = 0;
  uint64_t ipc_calls_ = 0;
  uint64_t cross_core_calls_ = 0;
  // Telemetry handles on the machine's registry (mk.*), bound at
  // construction; the call paths only do relaxed sharded adds.
  struct Metrics {
    sb::telemetry::Counter* ipc_calls;
    sb::telemetry::Counter* cross_core_calls;
    sb::telemetry::Counter* fastpath_legs;
    sb::telemetry::Counter* slowpath_legs;
    sb::telemetry::Counter* syscall_entries;
    sb::telemetry::Counter* context_switches;
  };
  Metrics metrics_;
  EptpInstallHook eptp_install_hook_;
  EptpInstaller eptp_installer_;
  CapSlot last_granted_slot_ = ~0u;
  bool booted_ = false;
};

}  // namespace mk

#endif  // SRC_MK_KERNEL_H_
