// Microkernel personalities.
//
// One Subkernel framework reproduces the IPC-path *shapes* of the three
// kernels the paper evaluates (Section 6.3):
//   seL4      — fastpath: direct process switch, no scheduler, in-register
//               messages. The fastest path (986-cycle roundtrip).
//   Fiasco.OC — fastpath exists but processes deferred requests (drq) on the
//               way, making it noticeably slower (2717 cycles).
//   Zircon    — no fastpath: every IPC may enter the scheduler and messages
//               are double-copied through the kernel (8157 cycles).
// Cross-core IPC degenerates to a slowpath with an IPI on all three.
//
// The cycle constants are calibrated so the direct-cost totals land on the
// paper's Figure 7 measurements; the indirect (cache/TLB) effects come from
// the simulated footprints, not from these constants.

#ifndef SRC_MK_PROFILE_H_
#define SRC_MK_PROFILE_H_

#include <cstdint>
#include <string>

namespace mk {

enum class KernelKind : uint8_t { kSel4, kFiasco, kZircon, kLinux };

struct KernelProfile {
  KernelKind kind = KernelKind::kSel4;
  std::string name = "seL4";

  bool has_fastpath = true;
  // Software IPC logic on the fastpath, one way (checks, caps, endpoint).
  uint64_t fastpath_logic_cycles = 98;
  // Software logic on the slowpath (cross-core), one way.
  uint64_t slowpath_logic_cycles = 574;
  // Scheduler invocation, same-core (0 when the fastpath bypasses it).
  uint64_t schedule_cycles = 0;
  // Scheduler work on the remote core for cross-core IPC, one way.
  uint64_t cross_schedule_cycles = 500;
  // Fixed cost per kernel message copy (Zircon does two per transfer even
  // for small messages; seL4/Fiasco move small messages in registers).
  uint64_t copy_fixed_cycles = 0;
  int copies_per_transfer = 0;  // For messages that fit in registers.
  int copies_long_transfer = 1;  // For messages that do not.

  // Paging configuration.
  bool pcid_enabled = true;
  bool kpti = false;  // Meltdown page-table isolation (off, as in Figure 7).

  // Cache footprint of one kernel IPC path traversal (bytes).
  uint64_t kernel_code_footprint = 1536;
  uint64_t kernel_data_footprint = 640;

  // In-register message capacity (bytes); larger messages go through memory.
  uint64_t register_msg_capacity = 64;
};

KernelProfile Sel4Profile();
KernelProfile FiascoProfile();
KernelProfile ZirconProfile();
// The paper's Section 10 future-work direction: a monolithic kernel whose
// processes communicate through pipe-style IPC (two copies through the
// kernel, reader wakeup via the scheduler, KPTI on — post-Meltdown Linux).
KernelProfile LinuxProfile();
KernelProfile ProfileFor(KernelKind kind);

}  // namespace mk

#endif  // SRC_MK_PROFILE_H_
