#include "src/mk/process.h"

namespace mk {

sb::StatusOr<hw::Gva> Process::AllocHeap(uint64_t bytes, uint64_t align) {
  uint64_t offset = (heap_used_ + align - 1) & ~(align - 1);
  if (offset + bytes > heap_limit_) {
    return sb::ResourceExhausted("process heap exhausted");
  }
  heap_used_ = offset + bytes;
  return kHeapVa + offset;
}

}  // namespace mk
