// Processes, threads and capabilities.
//
// A process owns a real 4-level page-table address space built in guest
// memory, a code image (actual x86-64 bytes — scanned and rewritten by
// SkyBridge at registration), a heap, per-thread stacks, a capability space
// and an identity frame (Section 4.2's process-misidentification fix).

#ifndef SRC_MK_PROCESS_H_
#define SRC_MK_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/hw/paging.h"

namespace mk {

class Kernel;
class Process;

// ---- Virtual address layout (identical for every process) ----
inline constexpr hw::Gva kRewritePageVa = 0x1000;        // Paper Section 5.1.
inline constexpr hw::Gva kCodeVa = 0x400000;
inline constexpr uint64_t kCodeSize = 64 * 1024;
inline constexpr hw::Gva kHeapVa = 0x10000000;
inline constexpr hw::Gva kStackTopVa = 0x7ffe00000000;
inline constexpr uint64_t kStackSize = 64 * 1024;
inline constexpr hw::Gva kTrampolineVa = 0x700000000000;       // SkyBridge code page.
// MPK-backend trampoline variant (WRPKRU gates instead of VMFUNC), one page
// above the VMFUNC trampoline. Both pages are shared frames mapped read-only
// into every prepared process; each is the sole legal site of its gate
// instruction.
inline constexpr hw::Gva kMpkTrampolineVa = 0x700000001000;
// Each server id owns a 16 MiB stack stride (256 connections x 64 KiB), so
// the regions below are spaced far enough apart that hundreds of servers /
// bindings never collide (stacks get 32 GiB of VA; buffers grow upward from
// their own base).
inline constexpr hw::Gva kServerStacksVa = 0x700000100000;     // SkyBridge stacks.
inline constexpr hw::Gva kSharedBufVa = 0x700800000000;        // SkyBridge buffers.
inline constexpr hw::Gva kIdentityVa = 0x700900000000;         // Identity page.
inline constexpr hw::Gva kCallingKeyTableVa = 0x700a00000000;  // Key table.
inline constexpr hw::Gva kKernelCodeVa = 0xffff800000000000;
inline constexpr hw::Gva kKernelDataVa = 0xffff880000000000;

enum class CapType : uint8_t { kNone = 0, kEndpoint, kMemory, kIrq };

inline constexpr uint32_t kRightCall = 1u << 0;
inline constexpr uint32_t kRightRecv = 1u << 1;
inline constexpr uint32_t kRightGrant = 1u << 2;

struct Capability {
  CapType type = CapType::kNone;
  uint64_t object = 0;  // Endpoint id, frame base, ...
  uint32_t rights = 0;
};

using CapSlot = uint32_t;

class Thread {
 public:
  Thread(Process* process, int tid, int core_id)
      : process_(process), tid_(tid), core_id_(core_id) {}

  Process* process() const { return process_; }
  int tid() const { return tid_; }
  int core_id() const { return core_id_; }
  void set_core_id(int core_id) { core_id_ = core_id; }

  // Opaque per-thread last-route cache. SkyBridge stores the binding it
  // resolved for this thread's most recent server lookup, so the common
  // mono-binding call pattern never consults the binding index. `generation`
  // is the owner's invalidation epoch: a mismatch means the entry is stale
  // and must be re-resolved. The kernel itself never reads these fields.
  struct RouteCache {
    uint64_t key = ~0ULL;       // Owner-defined lookup key (server id).
    uint64_t generation = 0;    // Owner's invalidation epoch.
    void* route = nullptr;      // Owner-defined route object.
  };
  RouteCache& route_cache() { return route_cache_; }

 private:
  Process* process_;
  int tid_;
  int core_id_;
  RouteCache route_cache_;
};

class Process {
 public:
  Process(Kernel* kernel, uint64_t pid, std::string name)
      : kernel_(kernel), pid_(pid), name_(std::move(name)) {}

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  uint64_t pid() const { return pid_; }
  const std::string& name() const { return name_; }
  Kernel& kernel() { return *kernel_; }

  hw::AddressSpace& address_space() { return *address_space_; }
  hw::Gpa cr3() const { return address_space_->root_gpa(); }
  uint16_t pcid() const { return address_space_->pcid(); }

  // The process's own EPT id in the Rootkernel (slot 0 of its EPTP list).
  uint64_t ept_id() const { return ept_id_; }
  void set_ept_id(uint64_t id) { ept_id_ = id; }

  // Rootkernel EPT ids to install on this process's EPTP list at dispatch
  // time (slot 0 = own EPT; further slots added by SkyBridge bindings).
  std::vector<uint64_t>& eptp_list_ids() { return eptp_list_ids_; }
  const std::vector<uint64_t>& eptp_list_ids() const { return eptp_list_ids_; }

  // Host-physical frame holding this process's identity record.
  hw::Hpa identity_frame() const { return identity_frame_; }
  void set_identity_frame(hw::Hpa f) { identity_frame_ = f; }

  // Raw bytes of the process's executable image (mapped at kCodeVa).
  const std::vector<uint8_t>& code_image() const { return code_image_; }
  void set_code_image(std::vector<uint8_t> image) { code_image_ = std::move(image); }
  bool code_rewritten() const { return code_rewritten_; }
  void set_code_rewritten(bool v) { code_rewritten_ = v; }

  // ---- Capability space ----
  CapSlot InstallCap(const Capability& cap) {
    caps_.push_back(cap);
    return static_cast<CapSlot>(caps_.size() - 1);
  }
  const Capability* LookupCap(CapSlot slot) const {
    if (slot >= caps_.size() || caps_[slot].type == CapType::kNone) {
      return nullptr;
    }
    return &caps_[slot];
  }
  void RevokeCap(CapSlot slot) {
    if (slot < caps_.size()) {
      caps_[slot] = Capability{};
    }
  }
  size_t cap_count() const { return caps_.size(); }

  // ---- Threads ----
  Thread* AddThread(int core_id) {
    threads_.push_back(std::make_unique<Thread>(this, static_cast<int>(threads_.size()), core_id));
    return threads_.back().get();
  }
  const std::vector<std::unique_ptr<Thread>>& threads() const { return threads_; }

  // Heap bump allocator (virtual addresses backed at creation time).
  sb::StatusOr<hw::Gva> AllocHeap(uint64_t bytes, uint64_t align = 64);
  uint64_t heap_used() const { return heap_used_; }

 private:
  friend class Kernel;

  Kernel* kernel_;
  uint64_t pid_;
  std::string name_;
  std::unique_ptr<hw::AddressSpace> address_space_;
  uint64_t heap_limit_ = 0;
  uint64_t heap_used_ = 0;
  uint64_t ept_id_ = 0;
  std::vector<uint64_t> eptp_list_ids_;
  hw::Hpa identity_frame_ = 0;
  std::vector<uint8_t> code_image_;
  bool code_rewritten_ = false;
  std::vector<Capability> caps_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace mk

#endif  // SRC_MK_PROCESS_H_
