#include "src/mk/notification.h"

#include "src/mk/kernel.h"

namespace mk {
namespace {

constexpr uint64_t kSignalLogicCycles = 60;  // Badge OR + waiter check.
constexpr uint64_t kWakeupCycles = 400;      // Scheduler wakeup on the waiter.

}  // namespace

sb::Status Notification::Signal(hw::Core& core, uint64_t badge) {
  if (badge == 0) {
    return sb::InvalidArgument("badge must be nonzero");
  }
  kernel_->SyscallEnter(core, nullptr);
  core.AdvanceCycles(kSignalLogicCycles);
  badges_ |= badge;
  last_signal_time_ = core.cycles();
  ++signals_;
  kernel_->SyscallExit(core, nullptr);
  return sb::OkStatus();
}

sb::StatusOr<uint64_t> Notification::Wait(hw::Core& core) {
  kernel_->SyscallEnter(core, nullptr);
  core.AdvanceCycles(kSignalLogicCycles);
  ++waits_;
  if (badges_ == 0) {
    // Block until the most recent signal's virtual time (a future signal in
    // virtual time is modeled by the caller ordering; FIFO arbitration of
    // multi-waiter scenarios lives in sim::FifoResource).
    if (last_signal_time_ <= core.cycles()) {
      kernel_->SyscallExit(core, nullptr);
      return sb::Unavailable("no signal pending and none in flight");
    }
  }
  if (last_signal_time_ > core.cycles()) {
    core.SyncClockTo(last_signal_time_);
  }
  core.AdvanceCycles(kWakeupCycles);
  const uint64_t collected = badges_;
  badges_ = 0;
  kernel_->SyscallExit(core, nullptr);
  if (collected == 0) {
    return sb::Unavailable("no signal pending");
  }
  return collected;
}

sb::StatusOr<uint64_t> Notification::Poll(hw::Core& core) {
  kernel_->SyscallEnter(core, nullptr);
  core.AdvanceCycles(kSignalLogicCycles);
  const uint64_t collected = badges_;
  badges_ = 0;
  kernel_->SyscallExit(core, nullptr);
  return collected;
}

}  // namespace mk
