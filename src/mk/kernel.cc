#include "src/mk/kernel.h"

#include "src/base/logging.h"
#include "src/base/telemetry/trace.h"
#include "src/base/units.h"
#include "src/mk/notification.h"
#include "src/mk/scheduler.h"

namespace mk {
namespace {

// Guest memory below this is the kernel image/data region; process frames
// come from above it.
constexpr hw::Hpa kGuestPoolBase = 16 * sb::kMiB;

using sb::telemetry::TraceEventType;

}  // namespace

Kernel::Kernel(hw::Machine& machine, KernelProfile profile, KernelOptions options)
    : machine_(&machine),
      profile_(std::move(profile)),
      options_(options),
      guest_frames_(kGuestPoolBase,
                    machine.mem().size() - kGuestPoolBase -
                        (options.boot_rootkernel ? options.rootkernel_config.reserved_bytes : 0)),
      current_(static_cast<size_t>(machine.num_cores()), nullptr) {
  // Warm-cache cost of the per-leg kernel touches (IPC footprint + the entry
  // stub's 7 lines); subtracted from the calibrated fastpath logic constant
  // so the measured totals land on Figure 7 instead of double counting.
  const uint64_t lines =
      profile_.kernel_code_footprint / 64 + profile_.kernel_data_footprint / 64 + 7;
  warm_footprint_cycles_ = lines * machine.costs().l1_hit;

  sb::telemetry::Registry& reg = machine.telemetry();
  metrics_.ipc_calls = &reg.GetCounter("mk.ipc.calls");
  metrics_.cross_core_calls = &reg.GetCounter("mk.ipc.cross_core_calls");
  metrics_.fastpath_legs = &reg.GetCounter("mk.ipc.fastpath_legs");
  metrics_.slowpath_legs = &reg.GetCounter("mk.ipc.slowpath_legs");
  metrics_.syscall_entries = &reg.GetCounter("mk.syscall.entries");
  metrics_.context_switches = &reg.GetCounter("mk.sched.context_switches");
}

Kernel::~Kernel() = default;

sb::Status Kernel::Boot() {
  SB_CHECK(!booted_);
  SB_RETURN_IF_ERROR(SetupKernelAddressSpace());

  if (options_.boot_rootkernel) {
    // Dynamic self-virtualization: the Subkernel boots the Rootkernel, which
    // downgrades it to non-root mode (the paper's one-line boot hook).
    SB_ASSIGN_OR_RETURN(rootkernel_, vmm::Rootkernel::Boot(*machine_, options_.rootkernel_config));
    // Sanity ping through the VMCALL interface.
    if (machine_->core(0).Vmcall(static_cast<uint64_t>(vmm::Hypercall::kPing)) !=
        vmm::kPingValue) {
      return sb::Internal("rootkernel VMCALL interface not responding");
    }
  }

  // Every core starts with the kernel address space.
  for (int i = 0; i < machine_->num_cores(); ++i) {
    machine_->core(i).WriteCr3(kernel_as_->root_gpa(), /*pcid=*/0, /*noflush=*/false);
    machine_->core(i).SetMode(hw::CpuMode::kKernel);
  }
  booted_ = true;
  return sb::OkStatus();
}

sb::Status Kernel::SetupKernelAddressSpace() {
  SB_ASSIGN_OR_RETURN(kernel_as_, hw::AddressSpace::Create(machine_->mem(), guest_frames_, 0));
  hw::PageFlags kflags;
  kflags.user = false;
  kflags.global = !profile_.kpti;
  SB_RETURN_IF_ERROR(
      kernel_as_->MapAnonymous(kKernelCodeVa, options_.kernel_code_bytes, kflags).status());
  SB_RETURN_IF_ERROR(
      kernel_as_->MapAnonymous(kKernelDataVa, options_.kernel_data_bytes, kflags).status());

  // The shared identity GPA page: one fixed guest-physical page whose EPT
  // translation is remapped per process (Section 4.2).
  SB_ASSIGN_OR_RETURN(identity_gpa_, guest_frames_.Alloc(machine_->mem()));
  return sb::OkStatus();
}

sb::StatusOr<Process*> Kernel::CreateProcess(const std::string& name) {
  // Default image: a small, real program (prologue + arithmetic + ret).
  std::vector<uint8_t> image = {0x55, 0x48, 0x89, 0xe5, 0x48, 0xc7, 0xc0, 0x2a,
                                0x00, 0x00, 0x00, 0x5d, 0xc3};
  return CreateProcessWithImage(name, std::move(image));
}

sb::StatusOr<Process*> Kernel::CreateProcessWithImage(const std::string& name,
                                                      std::vector<uint8_t> code_image) {
  SB_CHECK(booted_) << "CreateProcess before Boot";
  if (code_image.size() > kCodeSize) {
    return sb::InvalidArgument("code image larger than the code window");
  }
  auto process = std::make_unique<Process>(this, next_pid_++, name);
  Process* p = process.get();

  const uint16_t pcid = static_cast<uint16_t>(p->pid() % 4094 + 1);
  SB_ASSIGN_OR_RETURN(p->address_space_,
                      hw::AddressSpace::Create(machine_->mem(), guest_frames_, pcid));
  SB_RETURN_IF_ERROR(p->address_space_->ShareUpperHalf(*kernel_as_));

  // Code (user-executable, read-only after the image is written).
  hw::PageFlags code_flags;
  code_flags.writable = false;
  SB_ASSIGN_OR_RETURN(const hw::Gpa code_gpa,
                      p->address_space_->MapAnonymous(kCodeVa, kCodeSize, code_flags));
  machine_->mem().Write(code_gpa, code_image);
  p->set_code_image(std::move(code_image));

  // Heap and stack.
  p->heap_limit_ = options_.process_heap_bytes;
  SB_RETURN_IF_ERROR(
      p->address_space_->MapAnonymous(kHeapVa, options_.process_heap_bytes, hw::PageFlags{})
          .status());
  SB_RETURN_IF_ERROR(
      p->address_space_->MapAnonymous(kStackTopVa - kStackSize, kStackSize, hw::PageFlags{})
          .status());

  // Identity: the shared identity VA maps the shared identity GPA; each
  // process gets its own identity frame holding its pid, swapped in by the
  // per-process EPT.
  hw::PageFlags id_flags;
  id_flags.writable = false;
  SB_RETURN_IF_ERROR(p->address_space_->MapRange(kIdentityVa, identity_gpa_, sb::kPageSize,
                                                 id_flags));
  SB_ASSIGN_OR_RETURN(const hw::Hpa id_frame, guest_frames_.Alloc(machine_->mem()));
  machine_->mem().WriteU64(id_frame, p->pid());
  p->set_identity_frame(id_frame);

  if (rootkernel_ != nullptr) {
    // Process creation hook: derive the process's EPT and swap its identity
    // frame in (both via the VMCALL interface, so exits are accounted).
    hw::Core& core = machine_->core(0);
    const uint64_t ept_id =
        core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kCreateProcessEpt));
    if (ept_id == vmm::kHypercallError) {
      return sb::Internal("rootkernel failed to create process EPT");
    }
    if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kRemapIdentityPage), ept_id,
                    identity_gpa_, id_frame) != 0) {
      return sb::Internal("rootkernel failed to remap identity page");
    }
    p->set_ept_id(ept_id);
    p->eptp_list_ids().assign(1, ept_id);
  }

  processes_.push_back(std::move(process));
  return p;
}

sb::StatusOr<Endpoint*> Kernel::CreateEndpoint(Process* owner, Handler handler,
                                               std::vector<int> server_cores) {
  auto ep = std::make_unique<Endpoint>(endpoints_.size(), owner, std::move(handler));
  // Receive buffer for long messages, in the owner's heap.
  SB_ASSIGN_OR_RETURN(const hw::Gva recv, owner->AllocHeap(64 * sb::kKiB, sb::kPageSize));
  ep->set_recv_buffer(recv);
  ep->set_server_cores(std::move(server_cores));
  endpoints_.push_back(std::move(ep));
  // The owner implicitly holds a receive capability.
  owner->InstallCap(Capability{CapType::kEndpoint, endpoints_.back()->id(), kRightRecv});
  return endpoints_.back().get();
}

Endpoint* Kernel::endpoint(uint64_t id) {
  if (id >= endpoints_.size()) {
    return nullptr;
  }
  return endpoints_[id].get();
}

Notification* Kernel::CreateNotification() {
  notifications_.push_back(std::make_unique<Notification>(this, notifications_.size()));
  return notifications_.back().get();
}

sb::StatusOr<CapSlot> Kernel::GrantEndpointCap(Process* to, uint64_t endpoint_id,
                                               uint32_t rights) {
  if (endpoint(endpoint_id) == nullptr) {
    return sb::NotFound("no such endpoint");
  }
  return to->InstallCap(Capability{CapType::kEndpoint, endpoint_id, rights});
}

sb::Status Kernel::ContextSwitchTo(hw::Core& core, Process* process, CostBreakdown* bd) {
  return ContextSwitchInternal(core, process, bd, EptpInstallReason::kDispatch);
}

sb::Status Kernel::ContextSwitchInternal(hw::Core& core, Process* process, CostBreakdown* bd,
                                         EptpInstallReason reason) {
  SwitchAddressSpace(core, process, bd);
  current_[static_cast<size_t>(core.id())] = process;
  if (rootkernel_ != nullptr) {
    if (eptp_installer_) {
      // Delegated install (DESIGN.md section 15): the slot-virtualization
      // layer makes the process's view resident in its per-core working set
      // instead of reprogramming the whole list.
      SB_RETURN_IF_ERROR(eptp_installer_(core, process, reason));
      if (eptp_install_hook_) {
        eptp_install_hook_(core, process, reason);
      }
    } else if (!process->eptp_list_ids().empty()) {
      // Legacy path: install the process's full EPTP list (Section 4.2):
      // VMCALLs to the Rootkernel; charged as real VM exits.
      if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListClear)) != 0) {
        return sb::Internal("EPTP list clear failed");
      }
      for (const uint64_t ept_id : process->eptp_list_ids()) {
        if (core.Vmcall(static_cast<uint64_t>(vmm::Hypercall::kEptpListAppend), ept_id) ==
            vmm::kHypercallError) {
          return sb::Internal("EPTP list append failed");
        }
      }
      core.vmcs().active_index = 0;
      if (eptp_install_hook_) {
        eptp_install_hook_(core, process, reason);
      }
    }
  }
  return sb::OkStatus();
}

sb::Status Kernel::MigrateThread(Thread* thread, int dest_core, CostBreakdown* bd,
                                 bool eager_install) {
  if (thread == nullptr) {
    return sb::InvalidArgument("no thread to migrate");
  }
  if (dest_core < 0 || dest_core >= machine_->num_cores()) {
    return sb::InvalidArgument("destination core out of range");
  }
  if (thread->core_id() == dest_core) {
    return sb::OkStatus();
  }
  thread->set_core_id(dest_core);
  if (!eager_install) {
    // Lazy mode: the next call finds the destination core running another
    // process (dispatch switch) or a stale EPTP slot (retry fallback) and
    // recovers there.
    return sb::OkStatus();
  }
  // Eager mode: dispatch the process on the destination core now, so its
  // EPTP list is installed before the first post-migration call.
  if (current_process(dest_core) == thread->process()) {
    return sb::OkStatus();  // Already live (and installed) on the destination.
  }
  hw::Core& core = machine_->core(dest_core);
  return ContextSwitchInternal(core, thread->process(), bd, EptpInstallReason::kMigration);
}

void Kernel::RegisterScheduler(int core_id, Scheduler* scheduler) {
  if (core_id < 0) {
    return;
  }
  if (schedulers_.size() <= static_cast<size_t>(core_id)) {
    schedulers_.resize(static_cast<size_t>(core_id) + 1, nullptr);
  }
  schedulers_[static_cast<size_t>(core_id)] = scheduler;
}

void Kernel::UnregisterScheduler(int core_id, Scheduler* scheduler) {
  if (core_id < 0 || schedulers_.size() <= static_cast<size_t>(core_id)) {
    return;
  }
  if (schedulers_[static_cast<size_t>(core_id)] == scheduler) {
    schedulers_[static_cast<size_t>(core_id)] = nullptr;
  }
}

mk::Scheduler* Kernel::scheduler(int core_id) const {
  if (core_id < 0 || schedulers_.size() <= static_cast<size_t>(core_id)) {
    return nullptr;
  }
  return schedulers_[static_cast<size_t>(core_id)];
}

void Kernel::FinishAbortedCall(hw::Core& core, Thread* caller, CostBreakdown* bd) {
  // The unwind runs on the kernel path: entry, make the caller runnable
  // again (its synchronous call will never return normally), exit.
  SyscallEnter(core, bd);
  if (Scheduler* sched = scheduler(core.id()); sched != nullptr) {
    sched->UnblockAborted(caller, /*priority=*/0);
  }
  SyscallExit(core, bd);
}

sb::StatusOr<uint64_t> Kernel::CurrentIdentity(hw::Core& core) {
  return core.ReadVirtU64(kIdentityVa);
}

sb::Status Kernel::RaiseExecFault(hw::Core& core, hw::Gpa gpa) {
  hw::VmExitInfo info;
  info.reason = hw::VmExitReason::kEptExecViolation;
  info.qualification = gpa;
  const uint64_t result = machine_->DeliverVmExit(core, info);
  if (result == vmm::kHypercallError) {
    return sb::Unavailable("exec fault unresolved");
  }
  return sb::OkStatus();
}

void Kernel::SetExecFaultHandler(ExecFaultHandler handler) {
  if (rootkernel_ == nullptr) {
    return;
  }
  if (!handler) {
    rootkernel_->SetExecViolationHandler(nullptr);
    return;
  }
  rootkernel_->SetExecViolationHandler(
      [h = std::move(handler)](hw::Core& core, hw::Gpa gpa) -> uint64_t {
        return h(core, gpa).ok() ? 0 : vmm::kHypercallError;
      });
}

void Kernel::SyscallEnter(hw::Core& core, CostBreakdown* bd) {
  metrics_.syscall_entries->Add();
  SB_TRACE_EVENT(TraceEventType::kSyscallEnter, core.cycles(), core.id());
  const hw::CostModel& cm = machine_->costs();
  const uint64_t t0 = core.cycles();
  core.AdvanceCycles(cm.syscall_insn + cm.swapgs_insn);
  core.SetMode(hw::CpuMode::kKernel);
  ++core.pmu().syscalls;
  TouchKernelEntry(core);
  if (bd != nullptr) {
    bd->syscall_sysret += core.cycles() - t0;
  }
  if (profile_.kpti) {
    // Meltdown mitigation: switch to the kernel's page tables.
    core.WriteCr3(kernel_as_->root_gpa(), 0, profile_.pcid_enabled);
    if (bd != nullptr) {
      bd->context_switch += machine_->costs().cr3_write;
    }
  }
}

void Kernel::SyscallExit(hw::Core& core, CostBreakdown* bd) {
  const hw::CostModel& cm = machine_->costs();
  if (profile_.kpti) {
    Process* cur = current_[static_cast<size_t>(core.id())];
    const hw::Gpa user_root = cur != nullptr ? cur->cr3() : kernel_as_->root_gpa();
    const uint16_t user_pcid =
        cur != nullptr && profile_.pcid_enabled ? cur->pcid() : 0;
    core.WriteCr3(user_root, user_pcid, profile_.pcid_enabled);
    if (bd != nullptr) {
      bd->context_switch += cm.cr3_write;
    }
  }
  core.AdvanceCycles(cm.swapgs_insn + cm.sysret_insn);
  core.SetMode(hw::CpuMode::kUser);
  if (bd != nullptr) {
    bd->syscall_sysret += cm.swapgs_insn + cm.sysret_insn;
  }
  SB_TRACE_EVENT(TraceEventType::kSyscallExit, core.cycles(), core.id());
}

void Kernel::NoOpSyscall(hw::Core& core) {
  // The measured composite (Table 2) is cheaper than the sum of the isolated
  // instruction costs because the pipeline overlaps them; charge the
  // composite directly.
  const hw::CostModel& cm = machine_->costs();
  core.AdvanceCycles(profile_.kpti ? cm.noop_syscall_kpti : cm.noop_syscall);
  ++core.pmu().syscalls;
  TouchKernelEntry(core);
}

void Kernel::SwitchAddressSpace(hw::Core& core, Process* to, CostBreakdown* bd) {
  metrics_.context_switches->Add();
  SB_TRACE_EVENT(TraceEventType::kContextSwitch, core.cycles(), core.id(), to->pid());
  // Without PCID all address spaces share tag 0 and every CR3 write flushes
  // the non-global TLB entries — the paper's seL4 v10 behaviour and the
  // source of Table 1's indirect dTLB cost.
  const uint16_t pcid = profile_.pcid_enabled ? to->pcid() : 0;
  core.WriteCr3(to->cr3(), pcid, profile_.pcid_enabled);
  if (bd != nullptr) {
    bd->context_switch += machine_->costs().cr3_write;
  }
}

void Kernel::TouchKernelEntry(hw::Core& core) {
  // Entry stub + per-cpu kernel stack lines.
  (void)core.FetchCode(kKernelCodeVa, 256);
  (void)core.TouchData(kKernelDataVa + static_cast<uint64_t>(core.id()) * 4096, 192, true);
}

void Kernel::ChargeIpcLogic(hw::Core& core, bool fastpath, CostBreakdown* bd) {
  (fastpath ? metrics_.fastpath_legs : metrics_.slowpath_legs)->Add();
  const uint64_t constant =
      fastpath ? profile_.fastpath_logic_cycles : profile_.slowpath_logic_cycles;
  const uint64_t charged = constant > warm_footprint_cycles_ && fastpath
                               ? constant - warm_footprint_cycles_
                               : constant;
  const uint64_t t0 = core.cycles();
  core.AdvanceCycles(charged);
  if (fastpath) {
    // The IPC path's code and the endpoint/thread structures it walks; these
    // touches produce the indirect cache/TLB costs of Table 1.
    (void)core.FetchCode(kKernelCodeVa + 4096, profile_.kernel_code_footprint);
    (void)core.TouchData(kKernelDataVa + 64 * 1024, profile_.kernel_data_footprint, true);
  }
  if (bd != nullptr) {
    bd->others += core.cycles() - t0;
  }
}

void Kernel::ChargeCopies(hw::Core& core, const Message& msg, int copies, CostBreakdown* bd) {
  if (copies <= 0) {
    return;
  }
  const uint64_t per_copy =
      profile_.copy_fixed_cycles + msg.size() / 16;  // ~16 bytes/cycle.
  const uint64_t t0 = core.cycles();
  for (int i = 0; i < copies; ++i) {
    core.AdvanceCycles(per_copy);
    if (msg.size() > 0) {
      // Kernel bounce buffer traffic.
      (void)core.TouchData(kKernelDataVa + 128 * 1024, msg.size(), true);
    }
  }
  if (bd != nullptr) {
    bd->copy += core.cycles() - t0;
  }
}

sb::StatusOr<Message> Kernel::ServeLocal(hw::Core& core, Endpoint& ep, Process* caller_proc,
                                         const Message& msg, CostBreakdown* bd) {
  const bool fits = msg.size() <= profile_.register_msg_capacity;

  // ---- Request leg ----
  SyscallEnter(core, bd);
  if (msg.has_cap_grant) {
    // Capability transfer: validate the caller's authority, mint the new
    // capability into the receiver, and pay the slowpath (the fastpath
    // precondition "no capabilities are transferred" fails).
    bool authorized = false;
    for (CapSlot s = 0; s < caller_proc->cap_count(); ++s) {
      const Capability* held = caller_proc->LookupCap(s);
      if (held != nullptr && held->type == CapType::kEndpoint &&
          held->object == msg.grant_endpoint && (held->rights & kRightGrant) != 0) {
        authorized = true;
        break;
      }
    }
    ChargeIpcLogic(core, /*fastpath=*/false, bd);
    if (!authorized) {
      SyscallExit(core, bd);
      return sb::PermissionDenied("caller lacks grant right on transferred cap");
    }
    last_granted_slot_ = ep.owner()->InstallCap(
        Capability{CapType::kEndpoint, msg.grant_endpoint, msg.grant_rights});
  }
  // The local path always runs the kernel's common IPC logic; the slowpath
  // constant models the cross-core degeneration only.
  ChargeIpcLogic(core, /*fastpath=*/true, bd);
  ChargeCopies(core, msg, fits ? profile_.copies_per_transfer : profile_.copies_long_transfer,
               bd);
  if (profile_.schedule_cycles > 0) {
    // No-fastpath kernels (Zircon) enter the scheduler on every transfer.
    core.AdvanceCycles(profile_.schedule_cycles);
    if (bd != nullptr) {
      bd->schedule += profile_.schedule_cycles;
    }
  }
  SwitchAddressSpace(core, ep.owner(), bd);
  current_[static_cast<size_t>(core.id())] = ep.owner();
  if (!fits) {
    // Deliver the long message into the endpoint's receive buffer.
    SB_RETURN_IF_ERROR(core.WriteVirt(ep.recv_buffer(), msg.payload()));
  }
  SyscallExit(core, bd);

  // ---- Server handler (user mode, server address space) ----
  CallEnv env{*this, core, *ep.owner(), msg};
  Message reply = ep.handler()(env);

  // ---- Reply leg ----
  SyscallEnter(core, bd);
  ChargeIpcLogic(core, /*fastpath=*/true, bd);
  ChargeCopies(core, reply,
               reply.size() <= profile_.register_msg_capacity ? profile_.copies_per_transfer
                                                              : profile_.copies_long_transfer,
               bd);
  if (profile_.schedule_cycles > 0) {
    core.AdvanceCycles(profile_.schedule_cycles);
    if (bd != nullptr) {
      bd->schedule += profile_.schedule_cycles;
    }
  }
  SwitchAddressSpace(core, caller_proc, bd);
  current_[static_cast<size_t>(core.id())] = caller_proc;
  SyscallExit(core, bd);
  return reply;
}

sb::StatusOr<Message> Kernel::ServeCrossCore(hw::Core& caller_core, Endpoint& ep,
                                             int server_core_id, Process* caller_proc,
                                             const Message& msg, CostBreakdown* bd) {
  ++cross_core_calls_;
  metrics_.cross_core_calls->Add();
  const hw::CostModel& cm = machine_->costs();
  hw::Core& server_core = machine_->core(server_core_id);

  // Caller side: trap, slowpath send, IPI to the server core, block.
  SyscallEnter(caller_core, bd);
  ChargeIpcLogic(caller_core, /*fastpath=*/false, bd);
  const bool fits = msg.size() <= profile_.register_msg_capacity;
  ChargeCopies(caller_core, msg,
               fits ? std::max(profile_.copies_per_transfer, 1) : profile_.copies_long_transfer,
               bd);
  machine_->SendIpi(caller_core.id(), server_core_id);
  if (bd != nullptr) {
    bd->ipi += cm.ipi;
  }
  const uint64_t arrival = caller_core.cycles() + cm.ipi;

  // Server side: FIFO-serialized on the endpoint, runs on the server core.
  const uint64_t service_start = ep.service().Acquire(arrival);
  server_core.SyncClockTo(service_start);
  server_core.AdvanceCycles(profile_.cross_schedule_cycles);
  if (bd != nullptr) {
    bd->schedule += profile_.cross_schedule_cycles;
  }
  ChargeIpcLogic(server_core, /*fastpath=*/false, bd);
  if (current_[static_cast<size_t>(server_core_id)] != ep.owner()) {
    SwitchAddressSpace(server_core, ep.owner(), bd);
    current_[static_cast<size_t>(server_core_id)] = ep.owner();
  }
  if (!fits) {
    SB_RETURN_IF_ERROR(server_core.WriteVirt(ep.recv_buffer(), msg.payload()));
  }
  // Receive-side mode switch (the server thread returns from its recv call
  // and re-enters the kernel to reply).
  server_core.AdvanceCycles(cm.syscall_insn + 2 * cm.swapgs_insn + cm.sysret_insn);
  if (bd != nullptr) {
    bd->syscall_sysret += cm.syscall_insn + 2 * cm.swapgs_insn + cm.sysret_insn;
  }
  CallEnv env{*this, server_core, *ep.owner(), msg};
  Message reply = ep.handler()(env);
  ChargeCopies(server_core, reply,
               reply.size() <= profile_.register_msg_capacity
                   ? std::max(profile_.copies_per_transfer, 1)
                   : profile_.copies_long_transfer,
               bd);
  const uint64_t service_end = server_core.cycles();
  ep.service().Release(service_end);

  // Reply IPI back to the caller.
  machine_->SendIpi(server_core_id, caller_core.id());
  if (bd != nullptr) {
    bd->ipi += cm.ipi;
  }
  caller_core.SyncClockTo(service_end + cm.ipi);
  SyscallExit(caller_core, bd);
  return reply;
}

sb::StatusOr<Message> Kernel::IpcCall(Thread* caller, CapSlot cap_slot, const Message& msg,
                                      CostBreakdown* bd) {
  SB_CHECK(caller != nullptr);
  Process* caller_proc = caller->process();
  const Capability* cap = caller_proc->LookupCap(cap_slot);
  if (cap == nullptr || cap->type != CapType::kEndpoint) {
    return sb::InvalidArgument("bad endpoint capability");
  }
  if ((cap->rights & kRightCall) == 0) {
    return sb::PermissionDenied("capability lacks call right");
  }
  Endpoint* ep = endpoint(cap->object);
  SB_CHECK(ep != nullptr);
  ep->count_call();
  ++ipc_calls_;
  metrics_.ipc_calls->Add();

  hw::Core& core = machine_->core(caller->core_id());
  // Local service if a server thread lives on the caller's core.
  const std::vector<int>& cores = ep->server_cores();
  const bool local = cores.empty() ||
                     std::find(cores.begin(), cores.end(), caller->core_id()) != cores.end();
  if (local) {
    return ServeLocal(core, *ep, caller_proc, msg, bd);
  }
  const int server_core = cores[static_cast<size_t>(caller->core_id()) % cores.size()];
  return ServeCrossCore(core, *ep, server_core, caller_proc, msg, bd);
}

}  // namespace mk
