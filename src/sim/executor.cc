#include "src/sim/executor.h"

#include <algorithm>

#include "src/base/logging.h"

namespace sim {

void SimThread::Step() {
  SB_CHECK(!done_);
  // The thread may have been blocked past the core's clock (cross-core
  // waits); bring the core up to the thread's time before running.
  core_->SyncClockTo(now_);
  const bool more = body_(*this);
  now_ = std::max(now_, core_->cycles());
  ++iterations_;
  done_ = !more;
}

SimThread* Executor::AddThread(std::string name, int core_id, SimThread::Body body) {
  SB_CHECK(core_id >= 0 && core_id < machine_->num_cores());
  threads_.push_back(
      std::make_unique<SimThread>(std::move(name), &machine_->core(core_id), std::move(body)));
  return threads_.back().get();
}

void Executor::RunUntil(uint64_t deadline_cycles) {
  while (true) {
    SimThread* next = nullptr;
    for (const auto& t : threads_) {
      if (!t->done() && (next == nullptr || t->now() < next->now())) {
        next = t.get();
      }
    }
    if (next == nullptr || next->now() >= deadline_cycles) {
      return;
    }
    next->Step();
  }
}

uint64_t Executor::max_time() const {
  uint64_t t = 0;
  for (const auto& thread : threads_) {
    t = std::max(t, thread->now());
  }
  return t;
}

}  // namespace sim
