// Open-loop load generator on the deterministic executor (DESIGN.md
// section 14).
//
// Arrivals are Poisson (exponential interarrivals, one seeded stream per
// client) with zipfian key popularity; the whole schedule is precomputed
// from (seed, config) before a single call is issued, so the same seed and
// offered load always produce the byte-identical schedule.
//
// Coordinated-omission rule: latency is measured from the *intended* arrival
// cycle, never the issue cycle. When the system falls behind, the next
// arrival is issued late but still charged from its scheduled time, so
// queueing delay lands in the histogram instead of silently stretching the
// schedule (closed-loop measurement hides exactly this).
//
// Client mixes: sync (one blocking call per arrival) or batched (arrivals
// queue into the target's submission ring and one flush drains the burst;
// the generator flushes when `batch_depth` ops are pending OR the client
// goes idle, so low offered loads don't trade unbounded queueing for batch
// efficiency). Targets without a ring (`submit` unset) degrade to
// burst-coalesced sync calls under the same flush policy.
//
// The target is a bundle of std::function hooks, not a SkyBridge type —
// sb_sim stays below the IPC layers; benches and tests bind the hooks to
// DirectServerCall / SubmitCall / KvPipeline::Query / sqlite as needed.

#ifndef SRC_SIM_LOADGEN_H_
#define SRC_SIM_LOADGEN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/base/telemetry/slo.h"
#include "src/hw/machine.h"

namespace sim {

struct LoadGenConfig {
  uint64_t seed = 1;
  // Aggregate offered load across all clients, in ops per 1000 cycles.
  double offered_per_kcycle = 0.05;
  uint32_t events = 4096;     // Total arrivals across all clients.
  uint32_t num_clients = 1;
  // Simulated core per client; clients beyond the list pin to
  // client % num_cores.
  std::vector<int> client_cores;
  uint64_t num_keys = 1024;
  double zipf_theta = 0.99;   // <= 0 selects uniform keys.
  bool batched = false;
  uint32_t batch_depth = 16;  // Flush threshold (batched mode).
  std::vector<sb::telemetry::SloSpec> slos;
  // Emit kSpanArrival per op and park the call id for the target's next
  // submission (span tracing; needs SetTraceEnabled(true) to surface).
  bool emit_spans = false;
};

struct Arrival {
  uint64_t cycles = 0;  // Intended arrival time.
  uint64_t key = 0;
  uint32_t client = 0;
};

// The system under load. `sync_call` is required; the batched hooks are
// optional as a set (all three or none).
struct LoadTarget {
  std::function<sb::Status(uint32_t client, uint64_t key)> sync_call;
  // Enqueue one request; returns its completion token.
  std::function<sb::StatusOr<uint64_t>(uint32_t client, uint64_t key)> submit;
  // Drain the client's pending submissions (one crossing).
  std::function<sb::Status(uint32_t client)> flush;
  // Reap one completion. Unavailable = still pending (flush again); any
  // other error is that op's outcome.
  std::function<sb::Status(uint32_t client, uint64_t token)> poll;
};

struct LoadGenReport {
  uint64_t generated = 0;   // Arrivals issued.
  uint64_t completed = 0;   // Ops that finished OK (latency recorded).
  uint64_t errors = 0;      // Ops that finished with an error.
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t p9999 = 0;
  uint64_t max = 0;
  uint64_t overflow = 0;        // Latencies beyond the histogram range.
  uint64_t slo_breaches = 0;    // Window evaluations that violated a spec.
  uint64_t in_slo = 0;          // Ops meeting every spec's bound.
  double goodput_fraction = 0.0;      // in_slo / (completed + errors).
  double goodput_per_kcycle = 0.0;    // In-SLO ops per 1000 elapsed cycles.
  uint64_t elapsed_cycles = 0;
  uint64_t schedule_hash = 0;   // FNV over the (client, cycles, key) stream.
  uint64_t histogram_digest = 0;  // LatencyHistogram::Digest().
  uint64_t batch_flushes = 0;   // Flush invocations (batched mode).

  // Deterministic one-line digest for replay tests: same seed + load =>
  // identical string.
  std::string Fingerprint() const;
};

class LoadGenerator {
 public:
  // Precomputes the arrival schedule; Run() executes it on `machine`.
  LoadGenerator(hw::Machine& machine, LoadGenConfig config, LoadTarget target);

  // All arrivals in global time order (ties broken by client id).
  const std::vector<Arrival>& schedule() const { return schedule_; }

  // Executes the schedule to completion on a fresh Executor. Reusable: each
  // Run replays the same schedule with fresh latency/SLO state.
  sb::StatusOr<LoadGenReport> Run();

 private:
  struct ClientState;
  void BuildSchedule();

  hw::Machine* machine_;
  LoadGenConfig config_;
  LoadTarget target_;
  std::vector<std::vector<Arrival>> per_client_;
  std::vector<Arrival> schedule_;
};

}  // namespace sim

#endif  // SRC_SIM_LOADGEN_H_
