// Deterministic virtual-time executor for multicore workloads.
//
// The host has however many cores it has; the simulated machine has eight.
// Each simulated thread is pinned to a simulated core and advances that
// core's cycle clock when it runs. The executor always steps the thread with
// the smallest local time, which yields a deterministic, causally consistent
// interleaving. Shared serialization points (a single-threaded server, the
// file system's big lock) are FifoResources: acquisition order equals
// virtual-time arrival order, exactly like a FIFO ticket lock.

#ifndef SRC_SIM_EXECUTOR_H_
#define SRC_SIM_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/hw/machine.h"

namespace sim {

// A serialization point with FIFO ordering in virtual time.
class FifoResource {
 public:
  // Returns the time service can begin for a request arriving at `now`.
  uint64_t Acquire(uint64_t now) {
    const uint64_t start = std::max(now, free_at_);
    ++acquisitions_;
    if (start > now) {
      contended_cycles_ += start - now;
    }
    return start;
  }
  // Marks the resource free from `end` onwards.
  void Release(uint64_t end) { free_at_ = std::max(free_at_, end); }

  uint64_t free_at() const { return free_at_; }
  uint64_t acquisitions() const { return acquisitions_; }
  uint64_t contended_cycles() const { return contended_cycles_; }

 private:
  uint64_t free_at_ = 0;
  uint64_t acquisitions_ = 0;
  uint64_t contended_cycles_ = 0;
};

// A workload thread. `body` performs ONE unit of work (e.g. one request),
// reading and advancing the bound core's clock; it returns false when the
// thread is finished.
class SimThread {
 public:
  using Body = std::function<bool(SimThread&)>;

  SimThread(std::string name, hw::Core* core, Body body)
      : name_(std::move(name)), core_(core), body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  hw::Core& core() { return *core_; }
  // Re-pins the thread to another simulated core (migration benches). Takes
  // effect at the next Step(); the thread's virtual time carries over.
  void set_core(hw::Core* core) { core_ = core; }
  uint64_t now() const { return now_; }
  void set_now(uint64_t t) { now_ = t; }
  bool done() const { return done_; }
  uint64_t iterations() const { return iterations_; }

  // Runs one unit of work: syncs the core clock to the thread, calls the
  // body, then records the advanced time.
  void Step();

 private:
  std::string name_;
  hw::Core* core_;
  Body body_;
  uint64_t now_ = 0;
  bool done_ = false;
  uint64_t iterations_ = 0;
};

class Executor {
 public:
  explicit Executor(hw::Machine& machine) : machine_(&machine) {}

  SimThread* AddThread(std::string name, int core_id, SimThread::Body body);

  // Runs until every thread is done or the virtual deadline passes.
  void RunUntil(uint64_t deadline_cycles);
  void RunToCompletion() { RunUntil(UINT64_MAX); }

  // Virtual time of the latest completed work.
  uint64_t max_time() const;

  const std::vector<std::unique_ptr<SimThread>>& threads() const { return threads_; }

 private:
  hw::Machine* machine_;
  std::vector<std::unique_ptr<SimThread>> threads_;
};

}  // namespace sim

#endif  // SRC_SIM_EXECUTOR_H_
