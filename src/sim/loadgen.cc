#include "src/sim/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/base/logging.h"
#include "src/base/rng.h"
#include "src/base/telemetry/metrics.h"
#include "src/base/telemetry/span.h"
#include "src/base/telemetry/trace.h"
#include "src/sim/executor.h"

namespace sim {
namespace {

// Zipfian generator (Gray et al., "Quickly generating billion-record
// synthetic databases") — same construction apps/ycsb.h uses, reimplemented
// here because sb_sim sits below the app layer.
class ZipfDist {
 public:
  ZipfDist(uint64_t n, double theta) : n_(n), theta_(theta) {
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    const double zeta2 = 1.0 + std::pow(0.5, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next(sb::Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const auto k =
        static_cast<uint64_t>(static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return std::min(k, n_ - 1);
  }

 private:
  uint64_t n_;
  double theta_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
};

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (i * 8)) & 0xff)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string LoadGenReport::Fingerprint() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "sched=%016llx hist=%016llx completed=%llu errors=%llu breaches=%llu",
                static_cast<unsigned long long>(schedule_hash),
                static_cast<unsigned long long>(histogram_digest),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(errors),
                static_cast<unsigned long long>(slo_breaches));
  return buf;
}

struct LoadGenerator::ClientState {
  uint32_t index = 0;
  int core_id = 0;
  size_t next = 0;  // Next arrival to issue.
  struct Pending {
    uint64_t token = 0;
    uint64_t arrival = 0;
  };
  std::deque<Pending> pending;    // Submitted, not yet reaped (ring mode).
  std::deque<Arrival> deferred;   // Coalesced burst (no-ring fallback).
  uint32_t stall = 0;             // Tail-drain rounds without progress.
};

LoadGenerator::LoadGenerator(hw::Machine& machine, LoadGenConfig config, LoadTarget target)
    : machine_(&machine), config_(std::move(config)), target_(std::move(target)) {
  SB_CHECK(config_.num_clients > 0);
  SB_CHECK(config_.offered_per_kcycle > 0.0);
  SB_CHECK(config_.num_keys > 0);
  BuildSchedule();
}

void LoadGenerator::BuildSchedule() {
  const ZipfDist zipf(config_.num_keys, config_.zipf_theta > 0 ? config_.zipf_theta : 0.99);
  // Each client is an independent Poisson stream at rate lambda/num_clients;
  // the superposition offers the configured aggregate rate.
  const double mean_interarrival =
      1000.0 * static_cast<double>(config_.num_clients) / config_.offered_per_kcycle;
  per_client_.assign(config_.num_clients, {});
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    const uint32_t count =
        config_.events / config_.num_clients + (c < config_.events % config_.num_clients ? 1 : 0);
    // Two decoupled streams per client: arrival times and key choices, so a
    // config change to one never perturbs the other.
    sb::Rng arrivals(config_.seed ^ (0x9e3779b97f4a7c15ULL * (2 * c + 1)));
    sb::Rng keys(config_.seed ^ (0x9e3779b97f4a7c15ULL * (2 * c + 2)));
    uint64_t t = 0;
    per_client_[c].reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      // Exponential interarrival, floored at 1 cycle.
      const double u = arrivals.NextDouble();
      const double gap = -std::log(1.0 - u) * mean_interarrival;
      t += std::max<uint64_t>(1, static_cast<uint64_t>(gap));
      Arrival a;
      a.cycles = t;
      a.client = c;
      a.key = config_.zipf_theta > 0 ? zipf.Next(keys) : keys.Below(config_.num_keys);
      per_client_[c].push_back(a);
    }
  }
  schedule_.clear();
  schedule_.reserve(config_.events);
  for (const auto& list : per_client_) {
    schedule_.insert(schedule_.end(), list.begin(), list.end());
  }
  std::sort(schedule_.begin(), schedule_.end(), [](const Arrival& a, const Arrival& b) {
    if (a.cycles != b.cycles) {
      return a.cycles < b.cycles;
    }
    return a.client < b.client;
  });
}

sb::StatusOr<LoadGenReport> LoadGenerator::Run() {
  if (!target_.sync_call) {
    return sb::InvalidArgument("LoadTarget.sync_call is required");
  }
  const bool have_ring = static_cast<bool>(target_.submit);
  if (have_ring && (!target_.flush || !target_.poll)) {
    return sb::InvalidArgument("LoadTarget batched hooks must be set together");
  }

  sb::telemetry::LatencyHistogram latency("loadgen.latency");
  sb::telemetry::SloMonitor monitor(config_.slos);
  monitor.BindRegistry(machine_->telemetry(), "loadgen.slo");
  LoadGenReport report;

  // The schedule is relative; anchor it at the machine's current clock so a
  // warmed-up world (or a second Run on the same machine) doesn't charge the
  // pre-existing clock epoch to the first arrivals as latency.
  uint64_t base = 0;
  for (int c = 0; c < machine_->num_cores(); ++c) {
    base = std::max(base, machine_->core(c).cycles());
  }

  std::vector<ClientState> clients(config_.num_clients);
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    clients[c].index = c;
    clients[c].core_id = c < config_.client_cores.size()
                             ? config_.client_cores[c]
                             : static_cast<int>(c) % machine_->num_cores();
  }

  // One completed op (either outcome): record from the INTENDED arrival.
  const auto finish = [&](const sb::Status& status, uint64_t arrival_cycles, hw::Core& core) {
    const uint64_t done = core.cycles();
    const uint64_t intended = base + arrival_cycles;
    if (status.ok()) {
      const uint64_t lat = done >= intended ? done - intended : 0;
      latency.Record(lat);
      monitor.Observe(lat, done, static_cast<uint32_t>(core.id()));
      ++report.completed;
    } else {
      ++report.errors;
    }
  };

  // Drain one client's batch: flush the ring, then reap in submission order
  // until an entry is still pending (crashed crossing: the next flush gets
  // it).
  const auto flush_and_poll = [&](ClientState& st, hw::Core& core) {
    if (st.pending.empty()) {
      return;
    }
    const sb::Status flushed = target_.flush(st.index);
    ++report.batch_flushes;
    // Aborted = handler crash mid-drain; completions already posted still
    // reap below. Any other flush error surfaces per entry via poll.
    (void)flushed;
    while (!st.pending.empty()) {
      const ClientState::Pending front = st.pending.front();
      const sb::Status polled = target_.poll(st.index, front.token);
      if (polled.code() == sb::ErrorCode::kUnavailable) {
        break;  // Untouched by the (crashed) crossing; flush again later.
      }
      st.pending.pop_front();
      finish(polled, front.arrival, core);
    }
  };

  // Burst fallback: serve the coalesced arrivals back-to-back with sync
  // calls. Latency still runs from each op's own intended arrival, so the
  // queueing the coalescing added is visible, not hidden.
  const auto serve_burst = [&](ClientState& st, hw::Core& core) {
    while (!st.deferred.empty()) {
      const Arrival a = st.deferred.front();
      st.deferred.pop_front();
      finish(target_.sync_call(st.index, a.key), a.cycles, core);
    }
  };

  const auto emit_arrival = [&](const Arrival& a, hw::Core& core) {
    if (!config_.emit_spans) {
      return;
    }
    const uint64_t id = sb::telemetry::AllocCallId();
    sb::telemetry::TraceEmit(sb::telemetry::TraceEventType::kSpanArrival, base + a.cycles,
                             static_cast<uint32_t>(core.id()), id, a.key);
    sb::telemetry::SetPendingCallId(id);
  };

  Executor exec(*machine_);
  for (uint32_t c = 0; c < config_.num_clients; ++c) {
    ClientState& st = clients[c];
    const std::vector<Arrival>& arrivals = per_client_[c];
    exec.AddThread("loadgen-" + std::to_string(c), st.core_id,
                   [&, &st = st, &arrivals = arrivals](SimThread& t) -> bool {
                     hw::Core& core = t.core();
                     if (st.next >= arrivals.size()) {
                       // Tail drain: keep flushing until every op resolved.
                       if (!st.pending.empty()) {
                         const uint64_t before = report.completed + report.errors;
                         flush_and_poll(st, core);
                         if (report.completed + report.errors == before) {
                           // A pathological fault schedule can crash every
                           // crossing; after enough fruitless rounds the
                           // stragglers count as errors instead of hanging
                           // the run.
                           if (++st.stall > 1024) {
                             report.errors += st.pending.size();
                             st.pending.clear();
                           }
                         } else {
                           st.stall = 0;
                         }
                         return !st.pending.empty();
                       }
                       if (!st.deferred.empty()) {
                         serve_burst(st, core);
                       }
                       return false;
                     }
                     const Arrival& a = arrivals[st.next];
                     const uint64_t due = base + a.cycles;
                     if (t.now() < due) {
                       // Idle until the next arrival: flush any pending batch
                       // first (idle cycles are free; holding a short batch
                       // for its fill would just buy queueing delay)...
                       if (!st.pending.empty()) {
                         flush_and_poll(st, core);
                         return true;
                       }
                       if (!st.deferred.empty()) {
                         serve_burst(st, core);
                         return true;
                       }
                       // ...then sleep to the arrival.
                       t.set_now(due);
                       return true;
                     }
                     ++st.next;
                     ++report.generated;
                     emit_arrival(a, core);
                     if (!config_.batched) {
                       finish(target_.sync_call(st.index, a.key), a.cycles, core);
                       return true;
                     }
                     if (!have_ring) {
                       st.deferred.push_back(a);
                       if (st.deferred.size() >= config_.batch_depth) {
                         serve_burst(st, core);
                       }
                       return true;
                     }
                     auto token = target_.submit(st.index, a.key);
                     if (!token.ok() &&
                         token.status().code() == sb::ErrorCode::kResourceExhausted) {
                       // Ring full: drain and retry once.
                       flush_and_poll(st, core);
                       token = target_.submit(st.index, a.key);
                     }
                     if (!token.ok()) {
                       ++report.errors;
                       return true;
                     }
                     st.pending.push_back({*token, a.cycles});
                     if (st.pending.size() >= config_.batch_depth) {
                       flush_and_poll(st, core);
                     }
                     return true;
                   });
  }
  exec.RunToCompletion();

  report.mean = latency.Mean();
  report.p50 = latency.Percentile(50);
  report.p90 = latency.Percentile(90);
  report.p99 = latency.Percentile(99);
  report.p999 = latency.Percentile(99.9);
  report.p9999 = latency.Percentile(99.99);
  report.max = latency.Max();
  report.overflow = latency.OverflowCount();
  report.slo_breaches = monitor.breaches();
  report.in_slo = monitor.in_slo();
  const uint64_t finished = report.completed + report.errors;
  report.goodput_fraction =
      finished > 0 ? static_cast<double>(report.in_slo) / static_cast<double>(finished) : 1.0;
  const uint64_t end = exec.max_time();
  report.elapsed_cycles = end > base ? end - base : 0;
  report.goodput_per_kcycle = monitor.GoodputPerKcycle(report.elapsed_cycles);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const Arrival& a : schedule_) {
    h = Fnv1a(h, a.cycles);
    h = Fnv1a(h, a.key);
    h = Fnv1a(h, a.client);
  }
  report.schedule_hash = h;
  report.histogram_digest = latency.Digest();
  return report;
}

}  // namespace sim
