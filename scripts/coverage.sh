#!/bin/sh
# Line-coverage summary for the core subsystems (src/skybridge, src/x86).
# Configures an instrumented build tree (-DSB_COVERAGE=ON), runs the tier-1
# suite (stress excluded), then reports with the best available tool:
# lcov, gcovr, or raw gcov.
set -eu
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-coverage}
JOBS=$(nproc 2>/dev/null || echo 4)

cmake -B "$BUILD_DIR" -S . -DSB_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" -LE stress

if command -v lcov >/dev/null 2>&1; then
  # Newer lcov versions need mismatch errors downgraded for gcc headers.
  lcov --capture --directory "$BUILD_DIR" --output-file "$BUILD_DIR/coverage.info" \
       --quiet --ignore-errors mismatch,negative,unused 2>/dev/null ||
    lcov --capture --directory "$BUILD_DIR" --output-file "$BUILD_DIR/coverage.info" --quiet
  lcov --extract "$BUILD_DIR/coverage.info" "*/src/skybridge/*" "*/src/x86/*" \
       --output-file "$BUILD_DIR/coverage.core.info" --quiet \
       --ignore-errors unused 2>/dev/null ||
    lcov --extract "$BUILD_DIR/coverage.info" "*/src/skybridge/*" "*/src/x86/*" \
         --output-file "$BUILD_DIR/coverage.core.info" --quiet
  echo "== line coverage: src/skybridge + src/x86 =="
  lcov --list "$BUILD_DIR/coverage.core.info"
elif command -v gcovr >/dev/null 2>&1; then
  echo "== line coverage: src/skybridge + src/x86 (gcovr) =="
  gcovr -r . "$BUILD_DIR" --filter 'src/skybridge/' --filter 'src/x86/' --print-summary
else
  echo "lcov/gcovr not installed; raw gcov per-file summaries:"
  for dir in skybridge x86; do
    find "$BUILD_DIR" -name '*.gcda' -path "*${dir}*" -exec gcov -n {} + 2>/dev/null |
      grep -B1 "Lines executed" | grep -A1 "src/${dir}" || true
  done
fi
