#!/bin/sh
# Builds everything, runs the full test suite and regenerates every paper
# table/figure into test_output.txt and bench_output.txt at the repo root.
# Each bench binary also writes a machine-readable snapshot (via its
# `--json` flag) into bench_json/, and the per-bench files are merged into
# BENCH_results.json at the repo root.
set -e
cd "$(dirname "$0")/.."
# Reuse an existing build tree's generator; prefer Ninja on fresh configures.
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
elif command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir build 2>&1 | tee test_output.txt

rm -rf bench_json
mkdir -p bench_json
for b in build/bench/*; do
  # Skip CMake droppings, directories and anything not executable: only
  # regular executable files whose name starts with bench_ are benches.
  [ -f "$b" ] && [ -x "$b" ] || continue
  name=$(basename "$b")
  case "$name" in
    bench_*) ;;
    *) continue ;;
  esac
  echo "===== $b ====="
  if [ "$name" = "bench_gbench_micro" ]; then
    # Host-time microbenchmarks: keep the run short; the custom main strips
    # --json before google-benchmark parses its own flags. google-benchmark
    # >= 1.8 wants the "0.01s" suffix form, older releases reject it.
    "$b" --benchmark_min_time=0.01s --json "bench_json/$name.json" ||
      "$b" --benchmark_min_time=0.01 --json "bench_json/$name.json"
  elif [ "$name" = "bench_openloop" ]; then
    # The open-loop sweep stamps its JSON with the generator seed and
    # offered loads; pin the seed so BENCH_results.json is reproducible.
    "$b" --seed 42 --events 4096 --json "bench_json/$name.json"
  elif [ "$name" = "bench_coldstart" ]; then
    # Cold-start smoke gate: the binary self-checks snapshot restore >= 10x
    # cheaper than the eager full scan at 100 workers, a 100% rewrite-cache
    # hit rate across identical forks, and lazy steady-state parity with
    # eager; any violated bound exits nonzero and (set -e) fails the run.
    "$b" --json "bench_json/$name.json"
  elif [ "$name" = "bench_scaling_mesh" ]; then
    # 16,384-binding mesh: 11 full world builds; cap the per-config zipfian
    # run so the whole sweep stays under a minute, and pin the seed.
    "$b" --seed 42 --events 4096 --json "bench_json/$name.json"
  else
    "$b" --json "bench_json/$name.json"
  fi
done 2>&1 | tee bench_output.txt

python3 scripts/merge_bench_json.py bench_json BENCH_results.json
echo "wrote BENCH_results.json"
