#!/bin/sh
# Nightly stress driver: runs the seeded fault-injection stress suite
# (tests/stress_fault_test, ctest label `stress`) across a fixed seed
# matrix. Every failure leaves a replay artifact — the failing seed's
# Chrome-trace dump plus its counter fingerprint — in the artifact dir.
#
# Overrides:
#   SB_STRESS_SEEDS="1 2 3"      seed matrix (space-separated)
#   SB_STRESS_EVENTS=96          events per thread per scenario
#   SB_STRESS_ARTIFACT_DIR=dir   where failing-seed replays are written
#   BUILD_DIR=build              build tree to use
#
# Reproduce one failing seed by hand (see TESTING.md):
#   SB_STRESS_SEED=<seed> ./build/tests/stress_fault_test
set -u
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
if [ ! -x "$BUILD_DIR/tests/stress_fault_test" ]; then
  cmake -B "$BUILD_DIR" -S .
  cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)" --target stress_fault_test
fi

SEEDS=${SB_STRESS_SEEDS:-"1 2 3 4 5 6 7 8 0x5eedb41d6e55"}
EVENTS=${SB_STRESS_EVENTS:-48}
ARTIFACTS=${SB_STRESS_ARTIFACT_DIR:-stress_artifacts}
mkdir -p "$ARTIFACTS"

fail=0
for seed in $SEEDS; do
  echo "== stress seed=$seed events=$EVENTS =="
  if ! SB_STRESS_SEED="$seed" SB_STRESS_EVENTS="$EVENTS" \
       SB_STRESS_ARTIFACT_DIR="$ARTIFACTS" \
       "$BUILD_DIR/tests/stress_fault_test"; then
    echo "FAILED: seed $seed (replay artifact in $ARTIFACTS/)"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "stress matrix clean: seeds [$SEEDS], $EVENTS events/thread"
fi
exit $fail
