#!/usr/bin/env python3
"""Diffs two merged BENCH_results.json files (see merge_bench_json.py).

Usage: diff_bench.py <baseline.json> <current.json> [--threshold PCT]

Prints every cycles/op-style metric whose relative change exceeds the
threshold (default 2%), plus metrics that appear or disappear. Exit code is
always 0: this is a trend report for humans reading the CI log, not a gate —
the per-bench self-checks and the smoke-step asserts do the gating.
"""

import argparse
import json
import sys

# Series worth trending: anything measured in cycles or ops. Schema keys,
# counts and booleans are skipped.
SUFFIXES = ("cycles_per_op", "cycles_per_get", "cycles_per_call", "cycles",
            "ops_per_sec", "speedup_16", "speedup_8c", "overhead",
            "slot_fault_rate", "cycles_per_spawn", "snapshot_speedup_100",
            "fork_hit_rate_100")

# Tail-latency series from the open-loop sweep: flagged separately when p99
# or p99.9 regresses by more than 10% (still non-gating — queueing tails are
# noisier than closed-loop means, so this is a "look here" marker).
TAIL_SUFFIXES = (".p99", ".p999")
TAIL_THRESHOLD = 10.0


def series(merged, suffixes=SUFFIXES):
    out = {}
    for bench, obj in merged.items():
        for key, value in obj.get("metrics", {}).items():
            if isinstance(value, (int, float)) and key.endswith(suffixes):
                out[f"{bench}:{key}"] = float(value)
    return out


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="report changes beyond this percentage")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            base_merged = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"diff_bench: no usable baseline ({e}); nothing to diff")
        return 0
    with open(args.current) as f:
        cur_merged = json.load(f)
    base = series(base_merged)
    cur = series(cur_merged)

    # Tail-latency regressions first: a grown p99/p99.9 is the open-loop
    # sweep's whole reason to exist.
    base_tail = series(base_merged, TAIL_SUFFIXES)
    cur_tail = series(cur_merged, TAIL_SUFFIXES)
    regressed = []
    for key in sorted(base_tail.keys() & cur_tail.keys()):
        b, c = base_tail[key], cur_tail[key]
        if b == 0:
            continue
        pct = 100.0 * (c - b) / b
        if pct >= TAIL_THRESHOLD:
            regressed.append((pct, key, b, c))
    if regressed:
        print(f"P99 REGRESSION ({len(regressed)} tail series grew >= "
              f"{TAIL_THRESHOLD:g}%; non-gating):")
        for pct, key, b, c in sorted(regressed, key=lambda m: -m[0]):
            print(f"  {pct:+7.1f}%  {key}: {b:g} -> {c:g}")

    moved = []
    for key in sorted(base.keys() & cur.keys()):
        b, c = base[key], cur[key]
        if b == 0:
            continue
        pct = 100.0 * (c - b) / b
        if abs(pct) >= args.threshold:
            moved.append((pct, key, b, c))

    added = sorted(cur.keys() - base.keys())
    removed = sorted(base.keys() - cur.keys())

    if not moved and not added and not removed:
        print(f"diff_bench: {len(cur)} series, all within "
              f"{args.threshold:g}% of baseline")
        return 0

    for pct, key, b, c in sorted(moved, key=lambda m: -abs(m[0])):
        print(f"  {pct:+7.1f}%  {key}: {b:g} -> {c:g}")
    for key in added:
        print(f"  [new]     {key}: {cur[key]:g}")
    for key in removed:
        print(f"  [gone]    {key}: was {base[key]:g}")
    print(f"diff_bench: {len(moved)} moved, {len(added)} new, "
          f"{len(removed)} gone (of {len(cur)} series; threshold "
          f"{args.threshold:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
