#!/usr/bin/env python3
"""Merges the per-bench --json files into one BENCH_results.json.

Usage: merge_bench_json.py <input-dir> <output-file>

Each input file is one JSON object {"bench": <name>, "metrics": {...}}
with an optional "registry" telemetry snapshot (see bench/bench_util.h).
The merged file maps bench name -> that object; files that fail to parse
are reported and skipped, but at least one input must survive.
"""

import json
import pathlib
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    in_dir = pathlib.Path(sys.argv[1])
    out_path = pathlib.Path(sys.argv[2])

    merged = {}
    bad = 0
    for path in sorted(in_dir.glob("*.json")):
        try:
            with path.open() as f:
                obj = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"merge_bench_json: skipping {path}: {e}", file=sys.stderr)
            bad += 1
            continue
        name = obj.get("bench", path.stem)
        merged[name] = obj

    if not merged:
        print(f"merge_bench_json: no valid inputs in {in_dir}", file=sys.stderr)
        return 1

    with out_path.open("w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"merge_bench_json: merged {len(merged)} benches"
          + (f" ({bad} skipped)" if bad else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
