file(REMOVE_RECURSE
  "libsb_db.a"
)
