# Empty compiler generated dependencies file for sb_db.
# This may be replaced when dependencies are built.
