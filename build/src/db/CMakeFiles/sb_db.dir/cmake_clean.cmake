file(REMOVE_RECURSE
  "CMakeFiles/sb_db.dir/btree.cc.o"
  "CMakeFiles/sb_db.dir/btree.cc.o.d"
  "CMakeFiles/sb_db.dir/minisql.cc.o"
  "CMakeFiles/sb_db.dir/minisql.cc.o.d"
  "CMakeFiles/sb_db.dir/pager.cc.o"
  "CMakeFiles/sb_db.dir/pager.cc.o.d"
  "libsb_db.a"
  "libsb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
