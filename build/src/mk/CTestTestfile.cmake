# CMake generated Testfile for 
# Source directory: /root/repo/src/mk
# Build directory: /root/repo/build/src/mk
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
