file(REMOVE_RECURSE
  "CMakeFiles/sb_mk.dir/kernel.cc.o"
  "CMakeFiles/sb_mk.dir/kernel.cc.o.d"
  "CMakeFiles/sb_mk.dir/notification.cc.o"
  "CMakeFiles/sb_mk.dir/notification.cc.o.d"
  "CMakeFiles/sb_mk.dir/process.cc.o"
  "CMakeFiles/sb_mk.dir/process.cc.o.d"
  "CMakeFiles/sb_mk.dir/profile.cc.o"
  "CMakeFiles/sb_mk.dir/profile.cc.o.d"
  "CMakeFiles/sb_mk.dir/scheduler.cc.o"
  "CMakeFiles/sb_mk.dir/scheduler.cc.o.d"
  "libsb_mk.a"
  "libsb_mk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_mk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
