# Empty compiler generated dependencies file for sb_mk.
# This may be replaced when dependencies are built.
