file(REMOVE_RECURSE
  "libsb_mk.a"
)
