file(REMOVE_RECURSE
  "libsb_hw.a"
)
