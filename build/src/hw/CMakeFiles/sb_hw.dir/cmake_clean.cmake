file(REMOVE_RECURSE
  "CMakeFiles/sb_hw.dir/cache.cc.o"
  "CMakeFiles/sb_hw.dir/cache.cc.o.d"
  "CMakeFiles/sb_hw.dir/core.cc.o"
  "CMakeFiles/sb_hw.dir/core.cc.o.d"
  "CMakeFiles/sb_hw.dir/ept.cc.o"
  "CMakeFiles/sb_hw.dir/ept.cc.o.d"
  "CMakeFiles/sb_hw.dir/machine.cc.o"
  "CMakeFiles/sb_hw.dir/machine.cc.o.d"
  "CMakeFiles/sb_hw.dir/paging.cc.o"
  "CMakeFiles/sb_hw.dir/paging.cc.o.d"
  "CMakeFiles/sb_hw.dir/phys_mem.cc.o"
  "CMakeFiles/sb_hw.dir/phys_mem.cc.o.d"
  "CMakeFiles/sb_hw.dir/tlb.cc.o"
  "CMakeFiles/sb_hw.dir/tlb.cc.o.d"
  "libsb_hw.a"
  "libsb_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
