# Empty compiler generated dependencies file for sb_hw.
# This may be replaced when dependencies are built.
