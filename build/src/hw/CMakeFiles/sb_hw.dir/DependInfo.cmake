
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/sb_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/core.cc" "src/hw/CMakeFiles/sb_hw.dir/core.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/core.cc.o.d"
  "/root/repo/src/hw/ept.cc" "src/hw/CMakeFiles/sb_hw.dir/ept.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/ept.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/hw/CMakeFiles/sb_hw.dir/machine.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/machine.cc.o.d"
  "/root/repo/src/hw/paging.cc" "src/hw/CMakeFiles/sb_hw.dir/paging.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/paging.cc.o.d"
  "/root/repo/src/hw/phys_mem.cc" "src/hw/CMakeFiles/sb_hw.dir/phys_mem.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/phys_mem.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/sb_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/sb_hw.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
