# Empty compiler generated dependencies file for sb_vmm.
# This may be replaced when dependencies are built.
