file(REMOVE_RECURSE
  "libsb_vmm.a"
)
