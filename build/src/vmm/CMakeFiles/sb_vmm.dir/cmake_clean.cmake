file(REMOVE_RECURSE
  "CMakeFiles/sb_vmm.dir/rootkernel.cc.o"
  "CMakeFiles/sb_vmm.dir/rootkernel.cc.o.d"
  "libsb_vmm.a"
  "libsb_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
