file(REMOVE_RECURSE
  "CMakeFiles/sb_fs.dir/block_device.cc.o"
  "CMakeFiles/sb_fs.dir/block_device.cc.o.d"
  "CMakeFiles/sb_fs.dir/fs_rpc.cc.o"
  "CMakeFiles/sb_fs.dir/fs_rpc.cc.o.d"
  "CMakeFiles/sb_fs.dir/xv6fs.cc.o"
  "CMakeFiles/sb_fs.dir/xv6fs.cc.o.d"
  "libsb_fs.a"
  "libsb_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
