# Empty dependencies file for sb_fs.
# This may be replaced when dependencies are built.
