file(REMOVE_RECURSE
  "libsb_fs.a"
)
