# Empty dependencies file for sb_x86.
# This may be replaced when dependencies are built.
