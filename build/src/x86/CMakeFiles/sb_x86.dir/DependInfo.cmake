
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/assembler.cc" "src/x86/CMakeFiles/sb_x86.dir/assembler.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/assembler.cc.o.d"
  "/root/repo/src/x86/decoder.cc" "src/x86/CMakeFiles/sb_x86.dir/decoder.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/decoder.cc.o.d"
  "/root/repo/src/x86/emulator.cc" "src/x86/CMakeFiles/sb_x86.dir/emulator.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/emulator.cc.o.d"
  "/root/repo/src/x86/format.cc" "src/x86/CMakeFiles/sb_x86.dir/format.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/format.cc.o.d"
  "/root/repo/src/x86/insn.cc" "src/x86/CMakeFiles/sb_x86.dir/insn.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/insn.cc.o.d"
  "/root/repo/src/x86/rewriter.cc" "src/x86/CMakeFiles/sb_x86.dir/rewriter.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/rewriter.cc.o.d"
  "/root/repo/src/x86/scanner.cc" "src/x86/CMakeFiles/sb_x86.dir/scanner.cc.o" "gcc" "src/x86/CMakeFiles/sb_x86.dir/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/sb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
