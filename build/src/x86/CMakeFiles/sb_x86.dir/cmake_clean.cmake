file(REMOVE_RECURSE
  "CMakeFiles/sb_x86.dir/assembler.cc.o"
  "CMakeFiles/sb_x86.dir/assembler.cc.o.d"
  "CMakeFiles/sb_x86.dir/decoder.cc.o"
  "CMakeFiles/sb_x86.dir/decoder.cc.o.d"
  "CMakeFiles/sb_x86.dir/emulator.cc.o"
  "CMakeFiles/sb_x86.dir/emulator.cc.o.d"
  "CMakeFiles/sb_x86.dir/format.cc.o"
  "CMakeFiles/sb_x86.dir/format.cc.o.d"
  "CMakeFiles/sb_x86.dir/insn.cc.o"
  "CMakeFiles/sb_x86.dir/insn.cc.o.d"
  "CMakeFiles/sb_x86.dir/rewriter.cc.o"
  "CMakeFiles/sb_x86.dir/rewriter.cc.o.d"
  "CMakeFiles/sb_x86.dir/scanner.cc.o"
  "CMakeFiles/sb_x86.dir/scanner.cc.o.d"
  "libsb_x86.a"
  "libsb_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
