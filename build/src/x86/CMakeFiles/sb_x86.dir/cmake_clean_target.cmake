file(REMOVE_RECURSE
  "libsb_x86.a"
)
