file(REMOVE_RECURSE
  "CMakeFiles/sb_base.dir/logging.cc.o"
  "CMakeFiles/sb_base.dir/logging.cc.o.d"
  "CMakeFiles/sb_base.dir/stats.cc.o"
  "CMakeFiles/sb_base.dir/stats.cc.o.d"
  "CMakeFiles/sb_base.dir/status.cc.o"
  "CMakeFiles/sb_base.dir/status.cc.o.d"
  "CMakeFiles/sb_base.dir/table.cc.o"
  "CMakeFiles/sb_base.dir/table.cc.o.d"
  "libsb_base.a"
  "libsb_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
