file(REMOVE_RECURSE
  "libsb_base.a"
)
