# Empty compiler generated dependencies file for sb_base.
# This may be replaced when dependencies are built.
