file(REMOVE_RECURSE
  "libsb_skybridge.a"
)
