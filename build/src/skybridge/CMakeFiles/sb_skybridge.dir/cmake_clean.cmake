file(REMOVE_RECURSE
  "CMakeFiles/sb_skybridge.dir/guest_exec.cc.o"
  "CMakeFiles/sb_skybridge.dir/guest_exec.cc.o.d"
  "CMakeFiles/sb_skybridge.dir/skybridge.cc.o"
  "CMakeFiles/sb_skybridge.dir/skybridge.cc.o.d"
  "CMakeFiles/sb_skybridge.dir/trampoline.cc.o"
  "CMakeFiles/sb_skybridge.dir/trampoline.cc.o.d"
  "libsb_skybridge.a"
  "libsb_skybridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_skybridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
