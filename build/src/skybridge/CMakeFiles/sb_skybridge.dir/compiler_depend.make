# Empty compiler generated dependencies file for sb_skybridge.
# This may be replaced when dependencies are built.
