file(REMOVE_RECURSE
  "CMakeFiles/sb_apps.dir/corpus.cc.o"
  "CMakeFiles/sb_apps.dir/corpus.cc.o.d"
  "CMakeFiles/sb_apps.dir/kv.cc.o"
  "CMakeFiles/sb_apps.dir/kv.cc.o.d"
  "CMakeFiles/sb_apps.dir/sqlite_stack.cc.o"
  "CMakeFiles/sb_apps.dir/sqlite_stack.cc.o.d"
  "CMakeFiles/sb_apps.dir/ycsb.cc.o"
  "CMakeFiles/sb_apps.dir/ycsb.cc.o.d"
  "libsb_apps.a"
  "libsb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
