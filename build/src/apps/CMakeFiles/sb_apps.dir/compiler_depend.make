# Empty compiler generated dependencies file for sb_apps.
# This may be replaced when dependencies are built.
