file(REMOVE_RECURSE
  "libsb_apps.a"
)
