# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/x86_decoder_test[1]_include.cmake")
include("/root/repo/build/tests/x86_emulator_test[1]_include.cmake")
include("/root/repo/build/tests/x86_rewriter_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/vmm_test[1]_include.cmake")
include("/root/repo/build/tests/mk_test[1]_include.cmake")
include("/root/repo/build/tests/skybridge_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/skybridge_security_test[1]_include.cmake")
include("/root/repo/build/tests/mk_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/x86_format_test[1]_include.cmake")
include("/root/repo/build/tests/mk_notification_test[1]_include.cmake")
