file(REMOVE_RECURSE
  "CMakeFiles/x86_rewriter_test.dir/x86_rewriter_test.cc.o"
  "CMakeFiles/x86_rewriter_test.dir/x86_rewriter_test.cc.o.d"
  "x86_rewriter_test"
  "x86_rewriter_test.pdb"
  "x86_rewriter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
