# Empty dependencies file for x86_rewriter_test.
# This may be replaced when dependencies are built.
