file(REMOVE_RECURSE
  "CMakeFiles/skybridge_test.dir/skybridge_test.cc.o"
  "CMakeFiles/skybridge_test.dir/skybridge_test.cc.o.d"
  "skybridge_test"
  "skybridge_test.pdb"
  "skybridge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skybridge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
