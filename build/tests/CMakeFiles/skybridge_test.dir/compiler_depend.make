# Empty compiler generated dependencies file for skybridge_test.
# This may be replaced when dependencies are built.
