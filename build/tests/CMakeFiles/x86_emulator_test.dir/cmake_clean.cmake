file(REMOVE_RECURSE
  "CMakeFiles/x86_emulator_test.dir/x86_emulator_test.cc.o"
  "CMakeFiles/x86_emulator_test.dir/x86_emulator_test.cc.o.d"
  "x86_emulator_test"
  "x86_emulator_test.pdb"
  "x86_emulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_emulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
