# Empty dependencies file for x86_decoder_test.
# This may be replaced when dependencies are built.
