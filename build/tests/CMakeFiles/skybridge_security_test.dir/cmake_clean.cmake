file(REMOVE_RECURSE
  "CMakeFiles/skybridge_security_test.dir/skybridge_security_test.cc.o"
  "CMakeFiles/skybridge_security_test.dir/skybridge_security_test.cc.o.d"
  "skybridge_security_test"
  "skybridge_security_test.pdb"
  "skybridge_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skybridge_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
