# Empty dependencies file for skybridge_security_test.
# This may be replaced when dependencies are built.
