# Empty compiler generated dependencies file for mk_test.
# This may be replaced when dependencies are built.
