file(REMOVE_RECURSE
  "CMakeFiles/mk_test.dir/mk_test.cc.o"
  "CMakeFiles/mk_test.dir/mk_test.cc.o.d"
  "mk_test"
  "mk_test.pdb"
  "mk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
