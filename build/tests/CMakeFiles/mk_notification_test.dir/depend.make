# Empty dependencies file for mk_notification_test.
# This may be replaced when dependencies are built.
