file(REMOVE_RECURSE
  "CMakeFiles/mk_notification_test.dir/mk_notification_test.cc.o"
  "CMakeFiles/mk_notification_test.dir/mk_notification_test.cc.o.d"
  "mk_notification_test"
  "mk_notification_test.pdb"
  "mk_notification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_notification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
