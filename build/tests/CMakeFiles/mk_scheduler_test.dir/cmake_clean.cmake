file(REMOVE_RECURSE
  "CMakeFiles/mk_scheduler_test.dir/mk_scheduler_test.cc.o"
  "CMakeFiles/mk_scheduler_test.dir/mk_scheduler_test.cc.o.d"
  "mk_scheduler_test"
  "mk_scheduler_test.pdb"
  "mk_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mk_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
