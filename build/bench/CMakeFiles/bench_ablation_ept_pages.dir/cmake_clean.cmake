file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ept_pages.dir/bench_ablation_ept_pages.cc.o"
  "CMakeFiles/bench_ablation_ept_pages.dir/bench_ablation_ept_pages.cc.o.d"
  "CMakeFiles/bench_ablation_ept_pages.dir/bench_util.cc.o"
  "CMakeFiles/bench_ablation_ept_pages.dir/bench_util.cc.o.d"
  "bench_ablation_ept_pages"
  "bench_ablation_ept_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ept_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
