# Empty dependencies file for bench_table5_virt_overhead.
# This may be replaced when dependencies are built.
