file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_virt_overhead.dir/bench_table5_virt_overhead.cc.o"
  "CMakeFiles/bench_table5_virt_overhead.dir/bench_table5_virt_overhead.cc.o.d"
  "CMakeFiles/bench_table5_virt_overhead.dir/bench_util.cc.o"
  "CMakeFiles/bench_table5_virt_overhead.dir/bench_util.cc.o.d"
  "bench_table5_virt_overhead"
  "bench_table5_virt_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_virt_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
