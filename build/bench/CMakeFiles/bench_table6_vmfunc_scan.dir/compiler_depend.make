# Empty compiler generated dependencies file for bench_table6_vmfunc_scan.
# This may be replaced when dependencies are built.
