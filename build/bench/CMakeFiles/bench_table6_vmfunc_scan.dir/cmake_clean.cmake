file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_vmfunc_scan.dir/bench_table6_vmfunc_scan.cc.o"
  "CMakeFiles/bench_table6_vmfunc_scan.dir/bench_table6_vmfunc_scan.cc.o.d"
  "CMakeFiles/bench_table6_vmfunc_scan.dir/bench_util.cc.o"
  "CMakeFiles/bench_table6_vmfunc_scan.dir/bench_util.cc.o.d"
  "bench_table6_vmfunc_scan"
  "bench_table6_vmfunc_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_vmfunc_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
