file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_sqlite_ops.dir/bench_table4_sqlite_ops.cc.o"
  "CMakeFiles/bench_table4_sqlite_ops.dir/bench_table4_sqlite_ops.cc.o.d"
  "CMakeFiles/bench_table4_sqlite_ops.dir/bench_util.cc.o"
  "CMakeFiles/bench_table4_sqlite_ops.dir/bench_util.cc.o.d"
  "bench_table4_sqlite_ops"
  "bench_table4_sqlite_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_sqlite_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
