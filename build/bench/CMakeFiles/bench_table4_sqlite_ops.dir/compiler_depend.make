# Empty compiler generated dependencies file for bench_table4_sqlite_ops.
# This may be replaced when dependencies are built.
