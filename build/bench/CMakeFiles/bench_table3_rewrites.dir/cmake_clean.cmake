file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_rewrites.dir/bench_table3_rewrites.cc.o"
  "CMakeFiles/bench_table3_rewrites.dir/bench_table3_rewrites.cc.o.d"
  "CMakeFiles/bench_table3_rewrites.dir/bench_util.cc.o"
  "CMakeFiles/bench_table3_rewrites.dir/bench_util.cc.o.d"
  "bench_table3_rewrites"
  "bench_table3_rewrites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_rewrites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
