# Empty dependencies file for bench_ext_monolithic.
# This may be replaced when dependencies are built.
