
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_monolithic.cc" "bench/CMakeFiles/bench_ext_monolithic.dir/bench_ext_monolithic.cc.o" "gcc" "bench/CMakeFiles/bench_ext_monolithic.dir/bench_ext_monolithic.cc.o.d"
  "/root/repo/bench/bench_util.cc" "bench/CMakeFiles/bench_ext_monolithic.dir/bench_util.cc.o" "gcc" "bench/CMakeFiles/bench_ext_monolithic.dir/bench_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/skybridge/CMakeFiles/sb_skybridge.dir/DependInfo.cmake"
  "/root/repo/build/src/mk/CMakeFiles/sb_mk.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/sb_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/sb_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/sb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/sb_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/sb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/sb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
