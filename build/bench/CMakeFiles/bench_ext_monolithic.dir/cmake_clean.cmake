file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_monolithic.dir/bench_ext_monolithic.cc.o"
  "CMakeFiles/bench_ext_monolithic.dir/bench_ext_monolithic.cc.o.d"
  "CMakeFiles/bench_ext_monolithic.dir/bench_util.cc.o"
  "CMakeFiles/bench_ext_monolithic.dir/bench_util.cc.o.d"
  "bench_ext_monolithic"
  "bench_ext_monolithic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_monolithic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
