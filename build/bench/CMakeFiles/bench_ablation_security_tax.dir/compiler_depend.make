# Empty compiler generated dependencies file for bench_ablation_security_tax.
# This may be replaced when dependencies are built.
