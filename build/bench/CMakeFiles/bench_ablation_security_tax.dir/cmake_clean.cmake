file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_security_tax.dir/bench_ablation_security_tax.cc.o"
  "CMakeFiles/bench_ablation_security_tax.dir/bench_ablation_security_tax.cc.o.d"
  "CMakeFiles/bench_ablation_security_tax.dir/bench_util.cc.o"
  "CMakeFiles/bench_ablation_security_tax.dir/bench_util.cc.o.d"
  "bench_ablation_security_tax"
  "bench_ablation_security_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_security_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
