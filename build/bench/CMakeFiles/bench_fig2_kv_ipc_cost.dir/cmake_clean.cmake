file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_kv_ipc_cost.dir/bench_fig2_kv_ipc_cost.cc.o"
  "CMakeFiles/bench_fig2_kv_ipc_cost.dir/bench_fig2_kv_ipc_cost.cc.o.d"
  "CMakeFiles/bench_fig2_kv_ipc_cost.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig2_kv_ipc_cost.dir/bench_util.cc.o.d"
  "bench_fig2_kv_ipc_cost"
  "bench_fig2_kv_ipc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_kv_ipc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
