# Empty dependencies file for bench_fig2_kv_ipc_cost.
# This may be replaced when dependencies are built.
