# Empty dependencies file for bench_table1_pollution.
# This may be replaced when dependencies are built.
