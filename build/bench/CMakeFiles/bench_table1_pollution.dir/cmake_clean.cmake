file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pollution.dir/bench_table1_pollution.cc.o"
  "CMakeFiles/bench_table1_pollution.dir/bench_table1_pollution.cc.o.d"
  "CMakeFiles/bench_table1_pollution.dir/bench_util.cc.o"
  "CMakeFiles/bench_table1_pollution.dir/bench_util.cc.o.d"
  "bench_table1_pollution"
  "bench_table1_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
