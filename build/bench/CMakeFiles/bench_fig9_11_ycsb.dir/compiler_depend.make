# Empty compiler generated dependencies file for bench_fig9_11_ycsb.
# This may be replaced when dependencies are built.
