# Empty dependencies file for bench_fig8_kv_skybridge.
# This may be replaced when dependencies are built.
