file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kv_skybridge.dir/bench_fig8_kv_skybridge.cc.o"
  "CMakeFiles/bench_fig8_kv_skybridge.dir/bench_fig8_kv_skybridge.cc.o.d"
  "CMakeFiles/bench_fig8_kv_skybridge.dir/bench_util.cc.o"
  "CMakeFiles/bench_fig8_kv_skybridge.dir/bench_util.cc.o.d"
  "bench_fig8_kv_skybridge"
  "bench_fig8_kv_skybridge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kv_skybridge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
