file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_long_ipc.dir/bench_ablation_long_ipc.cc.o"
  "CMakeFiles/bench_ablation_long_ipc.dir/bench_ablation_long_ipc.cc.o.d"
  "CMakeFiles/bench_ablation_long_ipc.dir/bench_util.cc.o"
  "CMakeFiles/bench_ablation_long_ipc.dir/bench_util.cc.o.d"
  "bench_ablation_long_ipc"
  "bench_ablation_long_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_long_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
