# Empty dependencies file for bench_ablation_long_ipc.
# This may be replaced when dependencies are built.
