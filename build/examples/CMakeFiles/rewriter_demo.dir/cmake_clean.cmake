file(REMOVE_RECURSE
  "CMakeFiles/rewriter_demo.dir/rewriter_demo.cc.o"
  "CMakeFiles/rewriter_demo.dir/rewriter_demo.cc.o.d"
  "rewriter_demo"
  "rewriter_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriter_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
