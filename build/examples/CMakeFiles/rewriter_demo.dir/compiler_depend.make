# Empty compiler generated dependencies file for rewriter_demo.
# This may be replaced when dependencies are built.
