file(REMOVE_RECURSE
  "CMakeFiles/sqlite_stack_demo.dir/sqlite_stack_demo.cc.o"
  "CMakeFiles/sqlite_stack_demo.dir/sqlite_stack_demo.cc.o.d"
  "sqlite_stack_demo"
  "sqlite_stack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqlite_stack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
