# Empty dependencies file for sqlite_stack_demo.
# This may be replaced when dependencies are built.
