# Empty dependencies file for kvstore_pipeline.
# This may be replaced when dependencies are built.
