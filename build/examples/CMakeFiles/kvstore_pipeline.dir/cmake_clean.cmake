file(REMOVE_RECURSE
  "CMakeFiles/kvstore_pipeline.dir/kvstore_pipeline.cc.o"
  "CMakeFiles/kvstore_pipeline.dir/kvstore_pipeline.cc.o.d"
  "kvstore_pipeline"
  "kvstore_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
